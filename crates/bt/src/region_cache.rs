//! The region cache: the software structure holding translations.
//!
//! Subsequent executions of a hot code region run from its translation in
//! the region cache without paying interpretation costs (paper §II-A). The
//! cache is keyed by translation ID — the low 32 bits of the head PC,
//! which the paper notes is unique because the region cache is far smaller
//! than 2³² (paper §IV-B2).

use std::collections::HashMap;

use crate::translator::Translation;

/// A translation's unique identifier: the low 32 bits of its head PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TranslationId(pub u32);

impl std::fmt::Display for TranslationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The region cache.
///
/// Capacity-bounded; when full, the least-recently-*installed* translation
/// is evicted (the real system garbage-collects cold translations; our
/// workloads rarely exercise eviction, but the bound keeps behaviour
/// defined).
#[derive(Debug, Clone)]
pub struct RegionCache {
    translations: HashMap<TranslationId, Translation>,
    install_order: Vec<TranslationId>,
    capacity: usize,
}

impl RegionCache {
    /// Creates an empty region cache holding at most `capacity`
    /// translations. A zero capacity is clamped to one: the translation
    /// layer must stay panic-free under any configuration, and a
    /// one-entry cache is the nearest well-defined neighbour of a
    /// degenerate request.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RegionCache {
            translations: HashMap::new(),
            install_order: Vec::new(),
            capacity,
        }
    }

    /// Number of resident translations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.translations.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.translations.is_empty()
    }

    /// Looks up the translation with head PC `id`.
    #[must_use]
    pub fn get(&self, id: TranslationId) -> Option<&Translation> {
        self.translations.get(&id)
    }

    /// Installs a translation, evicting the oldest if at capacity.
    /// Returns the evicted translation's ID, if any.
    pub fn install(&mut self, translation: Translation) -> Option<TranslationId> {
        let id = translation.id();
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.translations.entry(id) {
            e.insert(translation);
            return None;
        }
        let mut evicted = None;
        if self.translations.len() == self.capacity {
            let victim = self.install_order.remove(0);
            self.translations.remove(&victim);
            evicted = Some(victim);
        }
        self.install_order.push(id);
        self.translations.insert(id, translation);
        evicted
    }

    /// Iterates over resident translations in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Translation> {
        self.translations.values()
    }

    /// Rebuilds every resident translation's decoded-instruction cache
    /// from `program`. Called after a snapshot restore, which carries
    /// trace PCs but not decoded instructions.
    pub fn rehydrate(&mut self, program: &powerchop_gisa::Program) {
        for t in self.translations.values_mut() {
            t.rehydrate(program);
        }
    }

    /// Fault hook: drops roughly `fraction` of resident translations,
    /// selected deterministically from `selector` (models an
    /// invalidation storm — self-modifying code detection, a page
    /// remapping, or a guest TLB shootdown wiping translated regions).
    /// Returns the IDs dropped so callers can discount dependent state.
    pub fn invalidate_fraction(&mut self, fraction: f64, selector: u64) -> Vec<TranslationId> {
        let mut dropped = Vec::new();
        self.invalidate_fraction_into(fraction, selector, &mut dropped);
        dropped
    }

    /// Allocation-free form of [`RegionCache::invalidate_fraction`] for
    /// the fault-storm hot path: clears `dropped` and fills it with the
    /// invalidated IDs, reusing its capacity across events.
    pub fn invalidate_fraction_into(
        &mut self,
        fraction: f64,
        selector: u64,
        dropped: &mut Vec<TranslationId>,
    ) {
        dropped.clear();
        let fraction = fraction.clamp(0.0, 1.0);
        let threshold = (fraction * 2f64.powi(32)) as u64;
        self.install_order.retain(|id| {
            // splitmix-style avalanche of (id, selector): a per-id coin
            // flip that is reproducible for a given selector.
            let mut z = u64::from(id.0) ^ selector.rotate_left(17);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            if (z >> 32) < threshold {
                dropped.push(*id);
                false
            } else {
                true
            }
        });
        for id in dropped.iter() {
            self.translations.remove(id);
        }
    }

    /// Drops every resident translation.
    pub fn clear(&mut self) {
        self.translations.clear();
        self.install_order.clear();
    }

    /// Serializes the cache contents in install order (the order is
    /// semantically meaningful — it determines future evictions — so it is
    /// written verbatim rather than sorted). Capacity is config-derived
    /// and not written.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        w.put_usize(self.install_order.len());
        for id in &self.install_order {
            match self.translations.get(id) {
                Some(t) => t.snapshot_to(w),
                // install_order and translations are kept in lock step;
                // encode a missing body defensively as an empty trace.
                None => Translation::empty_for(*id).snapshot_to(w),
            }
        }
    }

    /// Restores contents written by [`RegionCache::snapshot_to`] in place.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated or holds more translations than this cache's
    /// configured capacity.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        let count = r.take_usize()?;
        if count > self.capacity {
            return Err(powerchop_checkpoint::CheckpointError::Malformed {
                what: "region cache resident count exceeds capacity",
            });
        }
        self.translations.clear();
        self.install_order.clear();
        for _ in 0..count {
            let t = Translation::restore_from(r)?;
            self.install_order.push(t.id());
            self.translations.insert(t.id(), t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::translate;
    use powerchop_gisa::{Pc, ProgramBuilder};

    fn program_with_nops(n: usize) -> powerchop_gisa::Program {
        let mut b = ProgramBuilder::new("nops");
        for _ in 0..n {
            b.nop();
        }
        b.halt();
        b.build().expect("test program is well-formed")
    }

    #[test]
    fn install_then_get() {
        let p = program_with_nops(4);
        let mut rc = RegionCache::new(8);
        let t = translate(&p, Pc(0), 16).unwrap();
        assert!(rc.install(t).is_none());
        assert_eq!(rc.len(), 1);
        assert!(rc.get(TranslationId(0)).is_some());
        assert!(rc.get(TranslationId(1)).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let p = program_with_nops(10);
        let mut rc = RegionCache::new(2);
        rc.install(translate(&p, Pc(0), 1).unwrap());
        rc.install(translate(&p, Pc(1), 1).unwrap());
        let evicted = rc.install(translate(&p, Pc(2), 1).unwrap());
        assert_eq!(evicted, Some(TranslationId(0)));
        assert!(rc.get(TranslationId(0)).is_none());
        assert!(rc.get(TranslationId(1)).is_some());
        assert!(rc.get(TranslationId(2)).is_some());
    }

    #[test]
    fn reinstall_replaces_without_eviction() {
        let p = program_with_nops(4);
        let mut rc = RegionCache::new(1);
        rc.install(translate(&p, Pc(0), 2).unwrap());
        let evicted = rc.install(translate(&p, Pc(0), 3).unwrap());
        assert!(evicted.is_none());
        assert_eq!(rc.get(TranslationId(0)).unwrap().len(), 3);
    }

    #[test]
    fn zero_capacity_clamps_to_one_entry() {
        let p = program_with_nops(10);
        let mut rc = RegionCache::new(0);
        rc.install(translate(&p, Pc(0), 1).unwrap());
        assert_eq!(rc.len(), 1);
        let evicted = rc.install(translate(&p, Pc(1), 1).unwrap());
        assert_eq!(evicted, Some(TranslationId(0)));
        assert_eq!(rc.len(), 1);
    }

    #[test]
    fn invalidate_fraction_is_deterministic_and_bounded() {
        let p = program_with_nops(64);
        let build = || {
            let mut rc = RegionCache::new(128);
            for pc in 0..60 {
                rc.install(translate(&p, Pc(pc), 1).unwrap());
            }
            rc
        };
        let mut a = build();
        let mut b = build();
        assert!(a.invalidate_fraction(0.0, 1).is_empty());
        assert_eq!(a.invalidate_fraction(0.5, 7), b.invalidate_fraction(0.5, 7));
        let survivors = a.len();
        assert!(
            survivors > 0 && survivors < 60,
            "~half should survive, got {survivors}"
        );
        let dropped_all = a.invalidate_fraction(1.0, 3);
        assert_eq!(dropped_all.len(), survivors);
        assert!(a.is_empty());
        // Dropped translations are really gone.
        let mut c = build();
        for id in c.invalidate_fraction(0.5, 7) {
            assert!(c.get(id).is_none());
        }
    }

    #[test]
    fn clear_empties_the_cache() {
        let p = program_with_nops(8);
        let mut rc = RegionCache::new(8);
        rc.install(translate(&p, Pc(0), 2).unwrap());
        rc.clear();
        assert!(rc.is_empty());
        // Reinstall after clear works from a clean slate.
        rc.install(translate(&p, Pc(0), 2).unwrap());
        assert_eq!(rc.len(), 1);
    }

    #[test]
    fn display_of_translation_id() {
        assert_eq!(TranslationId(7).to_string(), "t7");
    }
}
