//! The region cache: the software structure holding translations.
//!
//! Subsequent executions of a hot code region run from its translation in
//! the region cache without paying interpretation costs (paper §II-A). The
//! cache is keyed by translation ID — the low 32 bits of the head PC,
//! which the paper notes is unique because the region cache is far smaller
//! than 2³² (paper §IV-B2).

use std::collections::HashMap;

use crate::translator::Translation;

/// A translation's unique identifier: the low 32 bits of its head PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TranslationId(pub u32);

impl std::fmt::Display for TranslationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The region cache.
///
/// Capacity-bounded; when full, the least-recently-*installed* translation
/// is evicted (the real system garbage-collects cold translations; our
/// workloads rarely exercise eviction, but the bound keeps behaviour
/// defined).
#[derive(Debug, Clone)]
pub struct RegionCache {
    translations: HashMap<TranslationId, Translation>,
    install_order: Vec<TranslationId>,
    capacity: usize,
}

impl RegionCache {
    /// Creates an empty region cache holding at most `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "region cache capacity must be positive");
        RegionCache {
            translations: HashMap::new(),
            install_order: Vec::new(),
            capacity,
        }
    }

    /// Number of resident translations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.translations.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.translations.is_empty()
    }

    /// Looks up the translation with head PC `id`.
    #[must_use]
    pub fn get(&self, id: TranslationId) -> Option<&Translation> {
        self.translations.get(&id)
    }

    /// Installs a translation, evicting the oldest if at capacity.
    /// Returns the evicted translation's ID, if any.
    pub fn install(&mut self, translation: Translation) -> Option<TranslationId> {
        let id = translation.id();
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.translations.entry(id) {
            e.insert(translation);
            return None;
        }
        let mut evicted = None;
        if self.translations.len() == self.capacity {
            let victim = self.install_order.remove(0);
            self.translations.remove(&victim);
            evicted = Some(victim);
        }
        self.install_order.push(id);
        self.translations.insert(id, translation);
        evicted
    }

    /// Iterates over resident translations in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Translation> {
        self.translations.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::translate;
    use powerchop_gisa::{Pc, ProgramBuilder};

    fn program_with_nops(n: usize) -> powerchop_gisa::Program {
        let mut b = ProgramBuilder::new("nops");
        for _ in 0..n {
            b.nop();
        }
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn install_then_get() {
        let p = program_with_nops(4);
        let mut rc = RegionCache::new(8);
        let t = translate(&p, Pc(0), 16).unwrap();
        assert!(rc.install(t).is_none());
        assert_eq!(rc.len(), 1);
        assert!(rc.get(TranslationId(0)).is_some());
        assert!(rc.get(TranslationId(1)).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let p = program_with_nops(10);
        let mut rc = RegionCache::new(2);
        rc.install(translate(&p, Pc(0), 1).unwrap());
        rc.install(translate(&p, Pc(1), 1).unwrap());
        let evicted = rc.install(translate(&p, Pc(2), 1).unwrap());
        assert_eq!(evicted, Some(TranslationId(0)));
        assert!(rc.get(TranslationId(0)).is_none());
        assert!(rc.get(TranslationId(1)).is_some());
        assert!(rc.get(TranslationId(2)).is_some());
    }

    #[test]
    fn reinstall_replaces_without_eviction() {
        let p = program_with_nops(4);
        let mut rc = RegionCache::new(1);
        rc.install(translate(&p, Pc(0), 2).unwrap());
        let evicted = rc.install(translate(&p, Pc(0), 3).unwrap());
        assert!(evicted.is_none());
        assert_eq!(rc.get(TranslationId(0)).unwrap().len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = RegionCache::new(0);
    }

    #[test]
    fn display_of_translation_id() {
        assert_eq!(TranslationId(7).to_string(), "t7");
    }
}
