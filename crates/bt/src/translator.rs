//! The translator/optimizer: builds translations from hot guest code.
//!
//! A *translation* is a short trace of guest code beginning at a hot head
//! PC (paper §II-A). The trace extends through straight-line code and
//! follows unconditional jumps, and terminates at a conditional branch,
//! indirect jump, call, return, halt, or the trace-length limit. The
//! translator also notes whether the region contains vector operations; for
//! such regions it emits *dual code paths* — a native SIMD body and a
//! scalar-emulation body — so the VPU can be power gated without consulting
//! the translator again (paper §IV-C2: "emulated using scalar operations
//! emitted along alternate code paths in the region cache's translations").

use powerchop_gisa::{Inst, Pc, Program};

use crate::region_cache::TranslationId;

/// An optimized host-ISA trace of a guest code region.
///
/// The trace (and its decoded-instruction cache) live behind `Arc` so the
/// machine can dispatch a translation with a reference-count bump instead
/// of copying the trace out of the region cache on every execution.
#[derive(Debug, Clone)]
pub struct Translation {
    id: TranslationId,
    head: Pc,
    trace: std::sync::Arc<[Pc]>,
    /// Decoded instructions for each trace PC, so hot blocks skip the
    /// per-step fetch. Derived from `trace` + the program: empty when not
    /// yet hydrated (e.g. right after a snapshot restore), in which case
    /// execution falls back to fetching. Never serialized.
    insts: std::sync::Arc<[Inst]>,
    has_vector: bool,
}

/// `insts` is derived from `trace` and the program, so equality (used by
/// tests comparing rebuilt translations) ignores it.
impl PartialEq for Translation {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.head == other.head
            && self.trace == other.trace
            && self.has_vector == other.has_vector
    }
}

impl Translation {
    /// The translation's unique ID (low 32 bits of the head PC, §IV-B2).
    #[must_use]
    pub fn id(&self) -> TranslationId {
        self.id
    }

    /// The guest PC of the translation head.
    #[must_use]
    pub fn head(&self) -> Pc {
        self.head
    }

    /// The guest PCs covered by the trace, in execution order.
    #[must_use]
    pub fn trace(&self) -> &[Pc] {
        &self.trace
    }

    /// A shared handle to the trace, for dispatch without copying.
    #[must_use]
    pub fn trace_arc(&self) -> std::sync::Arc<[Pc]> {
        std::sync::Arc::clone(&self.trace)
    }

    /// A shared handle to the decoded-instruction cache. Empty (rather
    /// than trace-length) when the translation has not been hydrated
    /// against its program, e.g. straight after a snapshot restore.
    #[must_use]
    pub fn insts_arc(&self) -> std::sync::Arc<[Inst]> {
        std::sync::Arc::clone(&self.insts)
    }

    /// Rebuilds the decoded-instruction cache from `program`. Leaves the
    /// cache empty if any trace PC is out of range (a corrupt snapshot);
    /// execution then falls back to the fetching path, which reports the
    /// fault properly.
    pub(crate) fn rehydrate(&mut self, program: &Program) {
        let decoded: Option<Vec<Inst>> = self
            .trace
            .iter()
            .map(|pc| program.inst(*pc).copied())
            .collect();
        self.insts = decoded.map_or_else(|| std::sync::Arc::from(Vec::new()), std::sync::Arc::from);
    }

    /// Number of guest instructions in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the trace is empty (never true for built translations).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Whether the region contains vector operations, i.e. whether the
    /// translator emitted dual (SIMD + scalar-emulation) code paths.
    #[must_use]
    pub fn has_vector(&self) -> bool {
        self.has_vector
    }

    /// A placeholder translation with an empty trace, used by the region
    /// cache to keep its serialized install order self-consistent.
    pub(crate) fn empty_for(id: TranslationId) -> Self {
        Translation {
            id,
            head: Pc(id.0),
            trace: std::sync::Arc::from(Vec::new()),
            insts: std::sync::Arc::from(Vec::new()),
            has_vector: false,
        }
    }

    /// Serializes the translation body. Traces are written verbatim (not
    /// re-translated on restore) because superblock formation depends on
    /// branch-bias statistics at translation time.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        w.put_u32(self.id.0);
        w.put_u32(self.head.0);
        w.put_usize(self.trace.len());
        for pc in self.trace.iter() {
            w.put_u32(pc.0);
        }
        w.put_bool(self.has_vector);
    }

    /// Reads a translation written by [`Translation::snapshot_to`].
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated or malformed.
    pub fn restore_from(
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<Self, powerchop_checkpoint::CheckpointError> {
        let id = TranslationId(r.take_u32()?);
        let head = Pc(r.take_u32()?);
        let len = r.take_usize()?;
        let mut trace = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            trace.push(Pc(r.take_u32()?));
        }
        let has_vector = r.take_bool()?;
        Ok(Translation {
            id,
            head,
            trace: std::sync::Arc::from(trace),
            // Hydrated by the machine after restore (the program is not
            // in scope here).
            insts: std::sync::Arc::from(Vec::new()),
            has_vector,
        })
    }
}

/// Builds a translation starting at `head`.
///
/// Returns `None` if `head` is outside the program (a wild indirect jump
/// target never reaches the translator in practice, but the region cache
/// must not be polluted if it does).
#[must_use]
pub fn translate(program: &Program, head: Pc, max_len: usize) -> Option<Translation> {
    translate_with_bias(program, head, max_len, |_| None)
}

/// Builds a *superblock* translation: like [`translate`], but the trace
/// speculatively continues through conditional branches whose direction
/// the interpreter found strongly biased (`bias(pc)` returns the likely
/// direction). This mirrors the speculative trace formation of the
/// Transmeta translator the paper's BT is modelled on (§II-A: the
/// interpreter collects "statistics about execution and branch
/// behavior"); mis-speculation is handled at run time by the region
/// cache's side-exit mechanism.
///
/// Returns `None` if `head` is outside the program.
#[must_use]
pub fn translate_with_bias(
    program: &Program,
    head: Pc,
    max_len: usize,
    bias: impl Fn(Pc) -> Option<bool>,
) -> Option<Translation> {
    program.inst(head)?;
    let mut trace = Vec::new();
    let mut insts = Vec::new();
    let mut has_vector = false;
    let mut pc = head;
    while trace.len() < max_len {
        let Some(inst) = program.inst(pc) else { break };
        trace.push(pc);
        insts.push(*inst);
        has_vector |= inst.class().uses_vpu();
        match inst {
            // Follow unconditional direct jumps through, fusing blocks.
            Inst::Jmp { target } => {
                // A self-loop or backward jump ends the trace to keep
                // translations finite and loop bodies as single traces.
                if target.0 <= pc.0 {
                    break;
                }
                pc = *target;
            }
            // Continue through strongly-biased conditional branches
            // (forward only — backward taken branches end the trace so
            // loop bodies remain single translations).
            Inst::Branch { target, .. } => match bias(pc) {
                Some(true) if target.0 > pc.0 => pc = *target,
                Some(false) => pc = pc.next(),
                _ => break,
            },
            i if i.ends_block() => break,
            _ => pc = pc.next(),
        }
    }
    Some(Translation {
        id: TranslationId(head.0),
        head,
        trace: std::sync::Arc::from(trace),
        insts: std::sync::Arc::from(insts),
        has_vector,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_gisa::{ProgramBuilder, Reg, VReg};

    fn r(i: u8) -> Reg {
        Reg::new(i).expect("register index in range")
    }

    #[test]
    fn biased_branches_extend_the_trace() {
        // not-taken-biased branch: trace falls through it.
        let mut b = ProgramBuilder::new("bias");
        let over = b.label();
        b.li(r(0), 1);
        b.beq(r(0), r(1), over); // rarely taken
        b.li(r(2), 2);
        b.bind(over).unwrap();
        b.halt();
        let p = b.build().expect("test program is well-formed");
        let plain = translate(&p, Pc(0), 64).unwrap();
        assert_eq!(plain.len(), 2, "plain traces end at the branch");
        let biased = translate_with_bias(&p, Pc(0), 64, |_| Some(false)).unwrap();
        assert_eq!(
            biased.trace(),
            &[Pc(0), Pc(1), Pc(2), Pc(3)],
            "superblock falls through to the halt"
        );
        let taken = translate_with_bias(&p, Pc(0), 64, |_| Some(true)).unwrap();
        assert_eq!(
            taken.trace(),
            &[Pc(0), Pc(1), Pc(3)],
            "superblock follows taken bias"
        );
    }

    #[test]
    fn backward_taken_bias_ends_trace() {
        let mut b = ProgramBuilder::new("backbias");
        let top = b.bind_label();
        b.addi(r(0), r(0), 1);
        b.blt(r(0), r(1), top);
        b.halt();
        let p = b.build().expect("test program is well-formed");
        let t = translate_with_bias(&p, Pc(0), 64, |_| Some(true)).unwrap();
        assert_eq!(
            t.len(),
            2,
            "backward branches end traces even when biased taken"
        );
    }

    #[test]
    fn trace_stops_at_conditional_branch() {
        let mut b = ProgramBuilder::new("t");
        b.li(r(0), 1);
        b.addi(r(0), r(0), 1);
        let top = b.bind_label();
        b.nop();
        b.blt(r(0), r(1), top);
        b.halt();
        let p = b.build().expect("test program is well-formed");
        let t = translate(&p, Pc(0), 64).unwrap();
        // li, addi, nop, blt — branch included, halt not.
        assert_eq!(t.len(), 4);
        assert_eq!(t.trace().last(), Some(&Pc(3)));
    }

    #[test]
    fn forward_jumps_are_fused() {
        let mut b = ProgramBuilder::new("fuse");
        let over = b.label();
        b.li(r(0), 1);
        b.jmp(over);
        b.nop(); // dead code, not in trace
        b.bind(over).unwrap();
        b.li(r(1), 2);
        b.halt();
        let p = b.build().expect("test program is well-formed");
        let t = translate(&p, Pc(0), 64).unwrap();
        assert_eq!(t.trace(), &[Pc(0), Pc(1), Pc(3), Pc(4)]);
    }

    #[test]
    fn backward_jump_ends_trace() {
        let mut b = ProgramBuilder::new("back");
        let top = b.bind_label();
        b.nop();
        b.jmp(top);
        let p = b.build().expect("test program is well-formed");
        let t = translate(&p, Pc(0), 64).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn vector_regions_are_flagged_for_dual_paths() {
        let v = VReg::new(0).expect("register index in range");
        let mut b = ProgramBuilder::new("vec");
        b.vadd(v, v, v);
        b.halt();
        let p = b.build().expect("test program is well-formed");
        assert!(translate(&p, Pc(0), 64).unwrap().has_vector());

        let mut b = ProgramBuilder::new("scalar");
        b.nop();
        b.halt();
        let p = b.build().expect("test program is well-formed");
        assert!(!translate(&p, Pc(0), 64).unwrap().has_vector());
    }

    #[test]
    fn max_len_bounds_trace() {
        let mut b = ProgramBuilder::new("long");
        for _ in 0..100 {
            b.nop();
        }
        b.halt();
        let p = b.build().expect("test program is well-formed");
        assert_eq!(translate(&p, Pc(0), 16).unwrap().len(), 16);
    }

    #[test]
    fn out_of_range_head_is_rejected() {
        let mut b = ProgramBuilder::new("small");
        b.halt();
        let p = b.build().expect("test program is well-formed");
        assert!(translate(&p, Pc(5), 16).is_none());
    }

    #[test]
    fn id_is_low_bits_of_head_pc() {
        let mut b = ProgramBuilder::new("id");
        b.nop();
        b.halt();
        let p = b.build().expect("test program is well-formed");
        let t = translate(&p, Pc(1), 16).unwrap();
        assert_eq!(t.id(), TranslationId(1));
    }
}
