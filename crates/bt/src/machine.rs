use powerchop_gisa::{Cpu, GisaError, Memory, Program};
use powerchop_uarch::core::{CoreModel, ExecMode};

use crate::jit::{JitEngine, JitMode, JitReport, JitStats};
use crate::region_cache::{RegionCache, TranslationId};
use crate::translator;

/// Tuning parameters of the BT layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtConfig {
    /// Dynamic executions of a region head before the translator runs.
    pub hot_threshold: u32,
    /// Maximum guest instructions per translation trace.
    pub max_trace_len: usize,
    /// Region-cache capacity in translations.
    pub region_cache_capacity: usize,
    /// One-time translation cost, in cycles per translated guest
    /// instruction (charged as a stall when the translator runs).
    pub translate_cycles_per_inst: u64,
    /// Form superblock traces through strongly-biased conditional
    /// branches, using the branch statistics the interpreter collects
    /// (Transmeta-style speculative trace formation). Mis-speculation
    /// side-exits at run time.
    pub superblocks: bool,
}

impl Default for BtConfig {
    fn default() -> Self {
        BtConfig {
            hot_threshold: 16,
            max_trace_len: 64,
            region_cache_capacity: 4096,
            translate_cycles_per_inst: 1500,
            superblocks: false,
        }
    }
}

/// Cumulative BT-layer statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BtStats {
    /// Instructions executed by the interpreter.
    pub interpreted_instructions: u64,
    /// Instructions executed from translations in the region cache.
    pub translated_instructions: u64,
    /// Translations built by the translator.
    pub translations_built: u64,
    /// Translation executions (region-cache dispatches that hit).
    pub translation_executions: u64,
    /// Translation executions that left the trace early because control
    /// flow diverged from the recorded path.
    pub side_exits: u64,
    /// Context switches observed (profiling state flushed each time).
    pub context_switches: u64,
    /// Translations dropped by region-cache invalidation events.
    pub invalidated_translations: u64,
}

impl powerchop_telemetry::MetricSource for BtStats {
    fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set(
            "bt_interpreted_instructions_total",
            self.interpreted_instructions,
        );
        reg.counter_set(
            "bt_translated_instructions_total",
            self.translated_instructions,
        );
        reg.counter_set("bt_translations_built_total", self.translations_built);
        reg.counter_set(
            "bt_translation_executions_total",
            self.translation_executions,
        );
        reg.counter_set("bt_side_exits_total", self.side_exits);
        reg.counter_set("bt_context_switches_total", self.context_switches);
        reg.counter_set(
            "bt_invalidated_translations_total",
            self.invalidated_translations,
        );
    }
}

/// One scheduling unit of hybrid execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineEvent {
    /// A translation executed from the region cache.
    ///
    /// This is the event the HTB observes: the translation's ID and the
    /// number of dynamic guest instructions it executed.
    Translation {
        /// ID of the executed translation.
        id: TranslationId,
        /// Dynamic guest instructions executed before the trace ended.
        instructions: u64,
    },
    /// One instruction was interpreted (cold code).
    Interpreted,
    /// The translator built and installed a new translation; no guest
    /// instruction executed during this event.
    Installed {
        /// ID of the new translation.
        id: TranslationId,
        /// Static guest instructions in its trace.
        guest_len: usize,
    },
    /// The guest program has halted.
    Halted,
}

/// The hybrid machine: guest CPU + memory + BT layer, driving a core
/// timing model.
///
/// Call [`Machine::step`] in a loop; each call executes one unit (a whole
/// translation, one interpreted instruction, or one translator run) and
/// reports what happened, which is exactly the granularity PowerChop's
/// hardware structures observe.
#[derive(Debug, Clone)]
pub struct Machine<'p> {
    program: &'p Program,
    cpu: Cpu,
    mem: Memory,
    region_cache: RegionCache,
    /// Interpreter hotness counters, directly indexed by PC (guest PCs
    /// are indices into the program, so a flat table replaces the hash
    /// map the interpreter used to hit on every block head). Zero means
    /// "not counted", matching the old map's absent entries.
    hotness: Vec<u32>,
    /// Per-branch (taken, total) counts collected by the interpreter,
    /// directly indexed by PC like `hotness`.
    branch_bias: Vec<(u32, u32)>,
    /// One bit per PC: whether the region cache holds a translation with
    /// that head. Lets the dispatch loop skip the region-cache hash
    /// lookup for the (overwhelmingly common) cold PCs; kept in lock
    /// step with every region-cache mutation.
    translated: Vec<bool>,
    config: BtConfig,
    at_block_head: bool,
    stats: BtStats,
    /// The native trace JIT. Compiled code is derived state: cloning
    /// yields a cold engine, snapshots never carry code bytes, and
    /// restore/invalidate drop it for recompile-on-demand.
    jit: JitEngine,
    /// Scratch buffer for invalidation storms, so the fault path does
    /// not allocate per event.
    invalidate_scratch: Vec<TranslationId>,
}

impl<'p> Machine<'p> {
    /// Creates a machine at the program entry with an initialized memory
    /// image and an empty region cache.
    #[must_use]
    pub fn new(program: &'p Program, config: BtConfig) -> Self {
        let mut mem = Memory::new();
        program.init_memory(&mut mem);
        Machine {
            program,
            cpu: Cpu::new(program),
            mem,
            region_cache: RegionCache::new(config.region_cache_capacity),
            hotness: vec![0; program.len()],
            branch_bias: vec![(0, 0); program.len()],
            translated: vec![false; program.len()],
            config,
            at_block_head: true,
            stats: BtStats::default(),
            jit: JitEngine::new(JitMode::Off),
            invalidate_scratch: Vec::new(),
        }
    }

    /// Replaces the JIT engine with a fresh one in `mode`. Resident
    /// translations compile on demand at their next dispatch.
    pub fn set_jit_mode(&mut self, mode: JitMode) {
        self.jit = JitEngine::new(mode);
    }

    /// The configured JIT mode.
    #[must_use]
    pub fn jit_mode(&self) -> JitMode {
        self.jit.mode()
    }

    /// Cumulative JIT counters.
    #[must_use]
    pub fn jit_stats(&self) -> JitStats {
        self.jit.stats()
    }

    /// The JIT report for run artifacts' sidecar (`None` when off).
    #[must_use]
    pub fn jit_report(&self) -> Option<JitReport> {
        self.jit.report()
    }

    /// Native code size compiled for translation `id`, if any.
    #[must_use]
    pub fn jit_code_len(&self, id: TranslationId) -> Option<usize> {
        self.jit.code_len(id)
    }

    /// The guest CPU state (for inspecting results).
    #[must_use]
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The guest memory (for inspecting results).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Whether the guest program has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.cpu.halted()
    }

    /// Total guest instructions retired (interpreted + translated).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.cpu.retired()
    }

    /// Cumulative BT statistics.
    #[must_use]
    pub fn stats(&self) -> BtStats {
        self.stats
    }

    /// The region cache (for inspection).
    #[must_use]
    pub fn region_cache(&self) -> &RegionCache {
        &self.region_cache
    }

    /// Executes one unit of hybrid execution, feeding the timing model.
    ///
    /// # Errors
    ///
    /// Propagates guest execution faults ([`GisaError`]); these indicate a
    /// bug in the guest program, not in the BT layer.
    pub fn step(&mut self, core: &mut CoreModel) -> Result<MachineEvent, GisaError> {
        if self.cpu.halted() {
            return Ok(MachineEvent::Halted);
        }

        let pc = self.cpu.pc();
        // The presence bitmap makes the translated/cold decision a flat
        // load; only PCs that really head a translation pay the region
        // cache's hash lookup.
        if self.translated.get(pc.0 as usize).copied().unwrap_or(false) {
            let head_id = TranslationId(pc.0);
            if let Some(translation) = self.region_cache.get(head_id) {
                // Translations are immutable and Arc-backed: dispatching
                // is a refcount bump, not a trace copy.
                let trace = translation.trace_arc();
                let insts = translation.insts_arc();
                if let Some(outcome) =
                    self.jit
                        .execute(head_id, &trace, &insts, &mut self.cpu, &mut self.mem, core)
                {
                    // Propagate guest faults before touching stats — the
                    // interpreter loop's `?` has the same ordering.
                    let outcome = outcome?;
                    self.stats.translation_executions += 1;
                    self.stats.translated_instructions += outcome.executed;
                    if outcome.side_exit {
                        self.stats.side_exits += 1;
                    }
                    self.at_block_head = true;
                    return Ok(MachineEvent::Translation {
                        id: head_id,
                        instructions: outcome.executed,
                    });
                }
                return self.execute_translation(head_id, &trace, &insts, core);
            }
        }

        // Slow path: interpret, counting hotness at block heads.
        if self.at_block_head {
            let count = self
                .hotness
                .get_mut(pc.0 as usize)
                .map(|counter| {
                    *counter += 1;
                    *counter
                })
                .unwrap_or(0);
            if count >= self.config.hot_threshold && count > 0 {
                self.hotness[pc.0 as usize] = 0;
                let built = if self.config.superblocks {
                    let bias = &self.branch_bias;
                    translator::translate_with_bias(
                        self.program,
                        pc,
                        self.config.max_trace_len,
                        |branch_pc| {
                            let (taken, total) = bias.get(branch_pc.0 as usize)?;
                            if *total < 8 {
                                return None;
                            }
                            let rate = f64::from(*taken) / f64::from(*total);
                            if rate >= 0.9 {
                                Some(true)
                            } else if rate <= 0.1 {
                                Some(false)
                            } else {
                                None
                            }
                        },
                    )
                } else {
                    translator::translate(self.program, pc, self.config.max_trace_len)
                };
                if let Some(t) = built {
                    let id = t.id();
                    let guest_len = t.len();
                    core.add_stall(self.config.translate_cycles_per_inst * guest_len as u64);
                    self.install_translation(t);
                    self.stats.translations_built += 1;
                    return Ok(MachineEvent::Installed { id, guest_len });
                }
            }
        }

        let info = self.cpu.step(self.program, &mut self.mem)?;
        core.on_step(&info, ExecMode::Interpreted);
        self.stats.interpreted_instructions += 1;
        if let Some(branch) = info.branch {
            if let Some((taken, total)) = self.branch_bias.get_mut(info.pc.0 as usize) {
                *taken += u32::from(branch.taken);
                *total += 1;
            }
        }
        self.at_block_head = info.inst.ends_block();
        Ok(MachineEvent::Interpreted)
    }

    /// Installs a translation and keeps the presence bitmap in lock step
    /// with the region cache (including the eviction it may cause).
    fn install_translation(&mut self, t: translator::Translation) {
        let id = t.id();
        self.jit.on_install(&t);
        if let Some(victim) = self.region_cache.install(t) {
            if let Some(bit) = self.translated.get_mut(victim.0 as usize) {
                *bit = false;
            }
            self.jit.remove(victim);
        }
        if let Some(bit) = self.translated.get_mut(id.0 as usize) {
            *bit = true;
        }
    }

    /// Executes a translation's trace. `insts` is the decoded-instruction
    /// cache (trace-length when hydrated, empty right after a restore, in
    /// which case each step falls back to fetching).
    fn execute_translation(
        &mut self,
        id: TranslationId,
        trace: &[powerchop_gisa::Pc],
        insts: &[powerchop_gisa::Inst],
        core: &mut CoreModel,
    ) -> Result<MachineEvent, GisaError> {
        let mut executed = 0u64;
        let mut side_exit = false;
        let decoded = insts.len() == trace.len();
        for (i, expected) in trace.iter().enumerate() {
            if self.cpu.pc() != *expected {
                side_exit = true;
                break;
            }
            let info = if decoded {
                self.cpu.step_prefetched(insts[i], &mut self.mem)?
            } else {
                self.cpu.step(self.program, &mut self.mem)?
            };
            core.on_step(&info, ExecMode::Translated);
            executed += 1;
            if self.cpu.halted() {
                break;
            }
        }
        self.stats.translation_executions += 1;
        self.stats.translated_instructions += executed;
        if side_exit {
            self.stats.side_exits += 1;
        }
        // A translation exit is a dispatch point: the next PC is a block
        // head for hotness purposes.
        self.at_block_head = true;
        Ok(MachineEvent::Translation {
            id,
            instructions: executed,
        })
    }

    /// Serializes the complete machine state: guest CPU and memory, the
    /// region cache, interpreter profiling state (hotness counters and
    /// branch-bias history, encoded as nonzero entries in PC order), and
    /// BT statistics. The program itself is not serialized — only its
    /// fingerprint, which restore verifies. The decoded-instruction
    /// caches and the head-presence bitmap are derived state and are
    /// rebuilt on restore.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        w.put_u64(self.program.fingerprint());
        self.cpu.snapshot_to(w);
        self.mem.snapshot_to(w);
        self.region_cache.snapshot_to(w);
        // Flat tables serialize as their nonzero entries in PC order —
        // byte-identical to the sorted encoding of the hash maps they
        // replaced (absent map entries are zero table entries).
        let hot: Vec<(u32, u32)> = self
            .hotness
            .iter()
            .enumerate()
            .filter(|(_, count)| **count > 0)
            .map(|(pc, count)| (pc as u32, *count))
            .collect();
        w.put_usize(hot.len());
        for (pc, count) in hot {
            w.put_u32(pc);
            w.put_u32(count);
        }
        let bias: Vec<(u32, (u32, u32))> = self
            .branch_bias
            .iter()
            .enumerate()
            .filter(|(_, (_, total))| *total > 0)
            .map(|(pc, counts)| (pc as u32, *counts))
            .collect();
        w.put_usize(bias.len());
        for (pc, (taken, total)) in bias {
            w.put_u32(pc);
            w.put_u32(taken);
            w.put_u32(total);
        }
        w.put_bool(self.at_block_head);
        for v in [
            self.stats.interpreted_instructions,
            self.stats.translated_instructions,
            self.stats.translations_built,
            self.stats.translation_executions,
            self.stats.side_exits,
            self.stats.context_switches,
            self.stats.invalidated_translations,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores state written by [`Machine::snapshot_to`] into a machine
    /// freshly built over the *same program* with the same [`BtConfig`].
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated, malformed, or was captured from a different
    /// program (fingerprint mismatch).
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        let fingerprint = r.take_u64()?;
        if fingerprint != self.program.fingerprint() {
            return Err(powerchop_checkpoint::CheckpointError::Malformed {
                what: "snapshot was captured from a different guest program",
            });
        }
        self.cpu.restore_from(r)?;
        self.mem.restore_from(r)?;
        self.region_cache.restore_from(r)?;
        // Snapshots carry trace PCs but not decoded instructions; rebuild
        // the decode cache and the head-presence bitmap from the restored
        // region cache.
        self.region_cache.rehydrate(self.program);
        // Native code is never snapshotted; drop any compiled traces and
        // let the restored translations recompile on demand.
        self.jit.clear();
        self.translated.fill(false);
        let heads: Vec<u32> = self.region_cache.iter().map(|t| t.id().0).collect();
        for head in heads {
            if let Some(bit) = self.translated.get_mut(head as usize) {
                *bit = true;
            }
        }
        let hot_count = r.take_usize()?;
        self.hotness.fill(0);
        for _ in 0..hot_count {
            let pc = r.take_u32()?;
            let count = r.take_u32()?;
            if let Some(slot) = self.hotness.get_mut(pc as usize) {
                *slot = count;
            }
        }
        let bias_count = r.take_usize()?;
        self.branch_bias.fill((0, 0));
        for _ in 0..bias_count {
            let pc = r.take_u32()?;
            let taken = r.take_u32()?;
            let total = r.take_u32()?;
            if let Some(slot) = self.branch_bias.get_mut(pc as usize) {
                *slot = (taken, total);
            }
        }
        self.at_block_head = r.take_bool()?;
        self.stats.interpreted_instructions = r.take_u64()?;
        self.stats.translated_instructions = r.take_u64()?;
        self.stats.translations_built = r.take_u64()?;
        self.stats.translation_executions = r.take_u64()?;
        self.stats.side_exits = r.take_u64()?;
        self.stats.context_switches = r.take_u64()?;
        self.stats.invalidated_translations = r.take_u64()?;
        Ok(())
    }

    /// Fault hook: a context switch. The guest's architectural state is
    /// saved and restored by the OS, but the BT layer's warm profiling
    /// state — interpreter hotness counters and branch-bias history —
    /// belongs to the time slice and is flushed, so hot regions must
    /// re-prove themselves. Installed translations survive (the region
    /// cache is per-process software state).
    pub fn on_context_switch(&mut self) {
        self.hotness.fill(0);
        self.branch_bias.fill((0, 0));
        self.at_block_head = true;
        self.stats.context_switches += 1;
    }

    /// Fault hook: a region-cache invalidation storm dropping roughly
    /// `fraction` of resident translations (selected deterministically
    /// from `selector`). Returns how many were dropped; execution falls
    /// back to interpretation until the regions re-heat.
    pub fn invalidate_regions(&mut self, fraction: f64, selector: u64) -> usize {
        // Reuse a scratch buffer: invalidation storms fire repeatedly on
        // the fault path and must not allocate per event.
        let mut dropped = std::mem::take(&mut self.invalidate_scratch);
        self.region_cache
            .invalidate_fraction_into(fraction, selector, &mut dropped);
        for id in &dropped {
            if let Some(bit) = self.translated.get_mut(id.0 as usize) {
                *bit = false;
            }
            self.jit.remove(*id);
        }
        self.stats.invalidated_translations += dropped.len() as u64;
        let count = dropped.len();
        self.invalidate_scratch = dropped;
        count
    }

    /// Runs until the guest halts or `max_instructions` have retired,
    /// discarding events. Convenience for tests and examples that only
    /// care about final state; PowerChop itself consumes events via
    /// [`Machine::step`].
    ///
    /// # Errors
    ///
    /// Propagates guest execution faults.
    pub fn run(&mut self, core: &mut CoreModel, max_instructions: u64) -> Result<(), GisaError> {
        while !self.cpu.halted() && self.cpu.retired() < max_instructions {
            self.step(core)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_gisa::{ProgramBuilder, Reg};
    use powerchop_uarch::config::CoreConfig;

    fn r(i: u8) -> Reg {
        Reg::new(i).expect("register index in range")
    }

    /// A program that loops `n` times over a small body.
    fn loop_program(n: i64) -> Program {
        let mut b = ProgramBuilder::new("loop");
        b.li(r(0), 0).li(r(1), n);
        let top = b.bind_label();
        b.addi(r(0), r(0), 1);
        b.addi(r(2), r(2), 3);
        b.blt(r(0), r(1), top);
        b.halt();
        b.build().expect("test program is well-formed")
    }

    fn new_core() -> CoreModel {
        CoreModel::new(&CoreConfig::server())
    }

    #[test]
    fn hot_loop_gets_translated_and_dominates() {
        let p = loop_program(10_000);
        let mut core = new_core();
        let mut m = Machine::new(&p, BtConfig::default());
        m.run(&mut core, u64::MAX).unwrap();
        assert!(m.halted());
        let s = m.stats();
        assert!(s.translations_built >= 1);
        assert!(
            s.translated_instructions > 50 * s.interpreted_instructions,
            "translated {} vs interpreted {}",
            s.translated_instructions,
            s.interpreted_instructions
        );
        // Architectural result identical to pure interpretation.
        assert_eq!(m.cpu().int_reg(r(0)), 10_000);
        assert_eq!(m.cpu().int_reg(r(2)), 30_000);
    }

    #[test]
    fn architectural_state_matches_pure_interpretation() {
        let p = loop_program(500);
        // Hybrid run.
        let mut core = new_core();
        let mut m = Machine::new(&p, BtConfig::default());
        m.run(&mut core, u64::MAX).unwrap();
        // Pure interpreter run (threshold too high to ever translate).
        let mut core2 = new_core();
        let mut m2 = Machine::new(
            &p,
            BtConfig {
                hot_threshold: u32::MAX,
                ..BtConfig::default()
            },
        );
        m2.run(&mut core2, u64::MAX).unwrap();
        assert_eq!(m.cpu(), m2.cpu());
        assert_eq!(m2.stats().translations_built, 0);
    }

    #[test]
    fn translation_events_report_dynamic_instructions() {
        let p = loop_program(10_000);
        let mut core = new_core();
        let mut m = Machine::new(&p, BtConfig::default());
        let mut translated_insts = 0;
        let mut events = 0;
        loop {
            match m.step(&mut core).expect("test program executes cleanly") {
                MachineEvent::Halted => break,
                MachineEvent::Translation { instructions, .. } => {
                    translated_insts += instructions;
                    events += 1;
                }
                _ => {}
            }
        }
        assert_eq!(translated_insts, m.stats().translated_instructions);
        assert_eq!(events, m.stats().translation_executions);
        assert!(events > 1000);
    }

    #[test]
    fn translation_charges_one_time_cost() {
        let p = loop_program(1000);
        let cfg = BtConfig {
            translate_cycles_per_inst: 10_000,
            ..BtConfig::default()
        };
        let mut expensive = new_core();
        Machine::new(&p, cfg).run(&mut expensive, u64::MAX).unwrap();
        let mut cheap = new_core();
        Machine::new(
            &p,
            BtConfig {
                translate_cycles_per_inst: 0,
                ..BtConfig::default()
            },
        )
        .run(&mut cheap, u64::MAX)
        .unwrap();
        assert!(expensive.cycles() > cheap.cycles() + 9_000);
    }

    #[test]
    fn interpreting_forever_is_slower_than_translating() {
        let p = loop_program(20_000);
        let mut hybrid_core = new_core();
        Machine::new(&p, BtConfig::default())
            .run(&mut hybrid_core, u64::MAX)
            .unwrap();
        let mut interp_core = new_core();
        Machine::new(
            &p,
            BtConfig {
                hot_threshold: u32::MAX,
                ..BtConfig::default()
            },
        )
        .run(&mut interp_core, u64::MAX)
        .unwrap();
        assert!(interp_core.cycles() > 2 * hybrid_core.cycles());
    }

    #[test]
    fn run_respects_instruction_budget() {
        let p = loop_program(1_000_000);
        let mut core = new_core();
        let mut m = Machine::new(&p, BtConfig::default());
        m.run(&mut core, 5_000).unwrap();
        assert!(!m.halted());
        // Budget is checked between units, so overshoot is at most one
        // translation length.
        assert!(m.retired() >= 5_000);
        assert!(m.retired() < 5_000 + 100);
    }

    #[test]
    fn superblocks_form_longer_traces_and_side_exit_on_misspeculation() {
        // A loop with a 15-of-16-biased forward branch: superblocks trace
        // through it, so the rare direction side-exits.
        let mut b = ProgramBuilder::new("superblock");
        b.li(r(0), 0).li(r(1), 30_000).li(r(2), 16).li(r(3), 15);
        let top = b.bind_label();
        let rare = b.label();
        let join = b.label();
        b.rem(r(4), r(0), r(2));
        b.beq(r(4), r(3), rare); // taken 1/16 of iterations
        b.addi(r(5), r(5), 1);
        b.jmp(join);
        b.bind(rare).unwrap();
        b.addi(r(6), r(6), 1);
        b.bind(join).unwrap();
        b.addi(r(0), r(0), 1);
        b.blt(r(0), r(1), top);
        b.halt();
        let p = b.build().expect("test program is well-formed");

        let run = |superblocks: bool| {
            let mut core = new_core();
            let mut m = Machine::new(
                &p,
                BtConfig {
                    superblocks,
                    ..BtConfig::default()
                },
            );
            m.run(&mut core, u64::MAX).unwrap();
            assert_eq!(m.cpu().int_reg(r(6)), 30_000 / 16, "semantics preserved");
            m.stats()
        };
        let plain = run(false);
        let superblock = run(true);
        assert!(
            superblock.translation_executions < plain.translation_executions,
            "longer traces mean fewer dispatches: {} vs {}",
            superblock.translation_executions,
            plain.translation_executions
        );
        assert!(superblock.side_exits > 0, "rare direction must side-exit");
        // Roughly 1 side exit per 16 iterations.
        assert!(superblock.side_exits as i64 >= 30_000 / 16 - 16);
    }

    #[test]
    fn context_switch_flushes_profiling_but_preserves_semantics() {
        let p = loop_program(10_000);
        let mut core = new_core();
        let mut m = Machine::new(&p, BtConfig::default());
        let mut steps = 0u64;
        while !m.halted() {
            m.step(&mut core).expect("test program executes cleanly");
            steps += 1;
            if steps.is_multiple_of(500) {
                m.on_context_switch();
            }
        }
        assert_eq!(m.stats().context_switches, steps / 500);
        // Architectural result identical to an undisturbed run.
        assert_eq!(m.cpu().int_reg(r(0)), 10_000);
        assert_eq!(m.cpu().int_reg(r(2)), 30_000);
    }

    #[test]
    fn region_invalidation_forces_retranslation_without_changing_results() {
        let p = loop_program(20_000);
        let mut core = new_core();
        let mut m = Machine::new(&p, BtConfig::default());
        let mut invalidated = 0usize;
        let mut steps = 0u64;
        while !m.halted() {
            m.step(&mut core).expect("test program executes cleanly");
            steps += 1;
            if steps.is_multiple_of(2_000) {
                invalidated += m.invalidate_regions(1.0, steps);
            }
        }
        assert!(
            invalidated > 0,
            "the hot loop should have been dropped at least once"
        );
        assert_eq!(m.stats().invalidated_translations, invalidated as u64);
        assert!(
            m.stats().translations_built > 1,
            "dropped regions must re-heat and retranslate"
        );
        assert_eq!(m.cpu().int_reg(r(0)), 20_000);
    }

    #[test]
    fn side_exits_are_counted() {
        // A branch that is taken during warm-up (so the trace records the
        // fall-through... actually records up to the branch) — build a
        // two-sided branch whose direction flips after translation.
        let mut b = ProgramBuilder::new("flip");
        // r0 counts iterations; r1 = 50_000 limit; r3 selects a path every
        // other iteration.
        let top_l;
        {
            b.li(r(0), 0).li(r(1), 50_000);
            top_l = b.bind_label();
            let odd = b.label();
            let join = b.label();
            b.rem(r(3), r(0), r(2)); // r2 = 0 -> rem = 0 always; keep simple
            b.bne(r(3), r(4), odd); // never taken (both 0) — till r4 changes
            b.addi(r(5), r(5), 1);
            b.jmp(join);
            b.bind(odd).unwrap();
            b.addi(r(6), r(6), 1);
            b.bind(join).unwrap();
            b.addi(r(0), r(0), 1);
            b.blt(r(0), r(1), top_l);
            b.halt();
        }
        let p = b.build().expect("test program is well-formed");
        let mut core = new_core();
        let mut m = Machine::new(&p, BtConfig::default());
        m.run(&mut core, u64::MAX).unwrap();
        // All iterations take the same path here; side exits may be zero.
        // The counter must never exceed executions.
        assert!(m.stats().side_exits <= m.stats().translation_executions);
    }
}
