//! No-op JIT backend for targets without native support (or builds with
//! `--cfg powerchop_force_interp`). Presents the same API surface as the
//! real backend so the facade and the dispatch loop compile unchanged; the
//! facade never calls `run` because `SUPPORTED` is `false`.

use std::sync::Arc;

use powerchop_gisa::{Cpu, GisaError, Inst, Memory, Pc};
use powerchop_uarch::core::CoreModel;

use super::JitRunOutcome;
use crate::region_cache::TranslationId;

pub(super) const SUPPORTED: bool = false;

pub(super) enum CompileOutcome {
    #[allow(dead_code)]
    Compiled {
        code_bytes: usize,
    },
    Ineligible,
}

pub(super) enum RunAttempt {
    #[allow(dead_code)]
    Ran(Result<JitRunOutcome, GisaError>),
    #[allow(dead_code)]
    Ineligible,
    Unknown,
}

pub(super) struct NativeEngine;

impl NativeEngine {
    pub(super) fn new() -> Self {
        NativeEngine
    }

    pub(super) fn try_run(
        &mut self,
        _id: TranslationId,
        _cpu: &mut Cpu,
        _mem: &mut Memory,
        _core: &mut CoreModel,
    ) -> RunAttempt {
        RunAttempt::Unknown
    }

    pub(super) fn compile(
        &mut self,
        _id: TranslationId,
        _trace: &Arc<[Pc]>,
        _insts: &Arc<[Inst]>,
    ) -> CompileOutcome {
        CompileOutcome::Ineligible
    }

    pub(super) fn code_len(&self, _id: TranslationId) -> Option<usize> {
        None
    }

    pub(super) fn resident(&self) -> usize {
        0
    }

    pub(super) fn remove(&mut self, _id: TranslationId) {}

    pub(super) fn clear(&mut self) {}
}
