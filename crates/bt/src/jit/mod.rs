//! Template-based x86-64 trace JIT behind the translator/region-cache seam.
//!
//! The paper's BT layer (§II-A) emits *native* host code for hot guest
//! regions; this module closes that gap for the simulator. Hot
//! [`Translation`]s are compiled to x86-64 machine code at install time (or
//! on demand after a checkpoint restore) and executed through an
//! `extern "C"` trampoline over the guest CPU's register file. Instruction
//! classes whose timing-model accounting reduces to pure issue-slot
//! arithmetic (integer/float ALU, multiplies, fused jumps, nops) run as
//! inline native templates; everything with microarchitectural side effects
//! (memory, branches, vector ops, calls, halts) is executed by a helper
//! that calls the *exact interpreter step*, so JIT-on and JIT-off runs are
//! bit-identical: same retired counts, same uarch/power accounting, same
//! artifacts.
//!
//! The backend is gated on `x86_64`/Linux (raw `mmap` is used for the W^X
//! code arena); on any other target — or when built with
//! `--cfg powerchop_force_interp` — [`JitEngine`] compiles to a no-op and
//! the interpreter remains the universal fallback.

use std::sync::Arc;

use powerchop_gisa::{Cpu, GisaError, Inst, Memory, Pc};
use powerchop_uarch::core::CoreModel;

use crate::region_cache::TranslationId;
use crate::translator::Translation;

#[cfg(all(
    target_arch = "x86_64",
    target_os = "linux",
    not(powerchop_force_interp)
))]
mod backend;
#[cfg(not(all(
    target_arch = "x86_64",
    target_os = "linux",
    not(powerchop_force_interp)
)))]
#[path = "backend_stub.rs"]
mod backend;

/// Whether the JIT backend engages: never, always (when supported), or
/// when the host supports it (the only difference from `On` is intent —
/// both fall back to the interpreter on unsupported hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JitMode {
    /// Never JIT; every translation runs through the interpreter loop.
    Off,
    /// JIT every eligible translation (interpreter fallback on
    /// unsupported hosts).
    On,
    /// Enable the JIT whenever the host backend is available.
    #[default]
    Auto,
}

impl JitMode {
    /// Parses `on`/`off`/`auto` (plus `1`/`true` and `0`/`false` aliases).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "on" | "1" | "true" | "yes" => Some(JitMode::On),
            "off" | "0" | "false" | "no" => Some(JitMode::Off),
            "auto" => Some(JitMode::Auto),
            _ => None,
        }
    }

    /// The default mode, honouring the `POWERCHOP_JIT` environment
    /// variable (`on`/`off`/`auto`); unparseable values warn and fall
    /// back to `Auto`, mirroring the `POWERCHOP_BUDGET` convention.
    #[must_use]
    pub fn default_from_env() -> Self {
        match std::env::var("POWERCHOP_JIT") {
            Ok(raw) => JitMode::parse(&raw).unwrap_or_else(|| {
                eprintln!(
                    "warning: ignoring unparseable POWERCHOP_JIT value {raw:?} \
                     (expected on, off or auto); using auto"
                );
                JitMode::Auto
            }),
            Err(_) => JitMode::Auto,
        }
    }

    /// Canonical lowercase name (`on`/`off`/`auto`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JitMode::Off => "off",
            JitMode::On => "on",
            JitMode::Auto => "auto",
        }
    }
}

impl std::fmt::Display for JitMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Cumulative JIT counters (not part of run artifacts or checkpoints:
/// the JIT is an execution strategy, not simulated state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitStats {
    /// Translations compiled to native code.
    pub translations_compiled: u64,
    /// Translation dispatches that executed native code.
    pub exec_hits: u64,
    /// Translation dispatches that fell back to the interpreter
    /// (ineligible trace, failed compile, or unhydrated decode cache).
    pub fallbacks: u64,
    /// Total native code bytes emitted.
    pub code_bytes: u64,
}

/// A JIT summary attached to run reports when the JIT is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitReport {
    /// The configured mode.
    pub mode: JitMode,
    /// Whether the host backend was available.
    pub supported: bool,
    /// The counters at end of run.
    pub stats: JitStats,
}

impl powerchop_telemetry::MetricSource for JitReport {
    fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set(
            "jit_translations_compiled",
            self.stats.translations_compiled,
        );
        reg.counter_set("jit_exec_hits", self.stats.exec_hits);
        reg.counter_set("jit_fallbacks", self.stats.fallbacks);
        reg.counter_set("jit_code_bytes", self.stats.code_bytes);
    }
}

/// What one native trace execution did, in the units the dispatch loop
/// already accounts: guest instructions executed and whether control flow
/// left the recorded path early.
#[derive(Debug, Clone, Copy)]
pub struct JitRunOutcome {
    /// Guest instructions executed (native + helper steps), equal to the
    /// interpreter loop's `executed` count for the same dispatch.
    pub executed: u64,
    /// Whether the trace side-exited.
    pub side_exit: bool,
}

/// The per-machine JIT: a code cache keyed by [`TranslationId`] plus the
/// counters above. Cloning yields a *cold* engine (same mode and counters,
/// no compiled code) — native code is derived state, recompiled on demand,
/// and is never snapshotted.
pub struct JitEngine {
    mode: JitMode,
    stats: JitStats,
    native: backend::NativeEngine,
}

impl JitEngine {
    /// Creates an engine in `mode` with an empty code cache.
    #[must_use]
    pub fn new(mode: JitMode) -> Self {
        JitEngine {
            mode,
            stats: JitStats::default(),
            native: backend::NativeEngine::new(),
        }
    }

    /// Whether this build/host has a native backend at all.
    #[must_use]
    pub fn supported() -> bool {
        backend::SUPPORTED
    }

    /// The configured mode.
    #[must_use]
    pub fn mode(&self) -> JitMode {
        self.mode
    }

    /// The cumulative counters.
    #[must_use]
    pub fn stats(&self) -> JitStats {
        self.stats
    }

    /// Whether dispatches should try native execution.
    #[must_use]
    pub fn is_active(&self) -> bool {
        backend::SUPPORTED && self.mode != JitMode::Off
    }

    /// The report attached to run artifacts' sidecar (`None` when the
    /// JIT is off, so JIT-off runs carry no trace of the feature).
    #[must_use]
    pub fn report(&self) -> Option<JitReport> {
        if self.mode == JitMode::Off {
            return None;
        }
        Some(JitReport {
            mode: self.mode,
            supported: backend::SUPPORTED,
            stats: self.stats,
        })
    }

    /// Native code size for `id`, if it is currently compiled.
    #[must_use]
    pub fn code_len(&self, id: TranslationId) -> Option<usize> {
        self.native.code_len(id)
    }

    /// Install hook: compile `t` eagerly so the first dispatch already
    /// runs native code (the translator just charged its one-time stall;
    /// compile cost rides on the same event).
    pub(crate) fn on_install(&mut self, t: &Translation) {
        if !self.is_active() {
            return;
        }
        self.compile(t.id(), &t.trace_arc(), &t.insts_arc());
    }

    fn compile(&mut self, id: TranslationId, trace: &Arc<[Pc]>, insts: &Arc<[Inst]>) -> bool {
        match self.native.compile(id, trace, insts) {
            backend::CompileOutcome::Compiled { code_bytes } => {
                self.stats.translations_compiled += 1;
                self.stats.code_bytes += code_bytes as u64;
                true
            }
            backend::CompileOutcome::Ineligible => false,
        }
    }

    /// Invalidation hook: drops `id`'s native code (if any).
    pub(crate) fn remove(&mut self, id: TranslationId) {
        self.native.remove(id);
    }

    /// Restore/flush hook: drops all native code. Resident translations
    /// recompile on demand at their next dispatch.
    pub(crate) fn clear(&mut self) {
        self.native.clear();
    }

    /// Dispatch hook: runs `id` natively if possible, compiling on demand
    /// (covers checkpoint restore and cloned machines). Returns `None`
    /// when the caller must fall back to the interpreter loop.
    pub(crate) fn execute(
        &mut self,
        id: TranslationId,
        trace: &Arc<[Pc]>,
        insts: &Arc<[Inst]>,
        cpu: &mut Cpu,
        mem: &mut Memory,
        core: &mut CoreModel,
    ) -> Option<Result<JitRunOutcome, GisaError>> {
        if !self.is_active() {
            return None;
        }
        match self.native.try_run(id, cpu, mem, core) {
            backend::RunAttempt::Ran(res) => {
                self.stats.exec_hits += 1;
                Some(res)
            }
            backend::RunAttempt::Ineligible => {
                self.stats.fallbacks += 1;
                None
            }
            backend::RunAttempt::Unknown => {
                // Compile on demand: covers checkpoint restore and cloned
                // machines, whose code caches start cold.
                if !self.compile(id, trace, insts) {
                    self.stats.fallbacks += 1;
                    return None;
                }
                self.stats.exec_hits += 1;
                match self.native.try_run(id, cpu, mem, core) {
                    backend::RunAttempt::Ran(res) => Some(res),
                    _ => unreachable!("compile() just installed this trace"),
                }
            }
        }
    }
}

impl Clone for JitEngine {
    fn clone(&self) -> Self {
        JitEngine {
            mode: self.mode,
            stats: self.stats,
            native: backend::NativeEngine::new(),
        }
    }
}

impl std::fmt::Debug for JitEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitEngine")
            .field("mode", &self.mode)
            .field("supported", &backend::SUPPORTED)
            .field("resident", &self.native.resident())
            .field("stats", &self.stats)
            .finish()
    }
}
