//! The x86-64/Linux JIT backend: code arena, encoder, trace compiler and
//! trampoline runtime. This is the one corner of the workspace allowed to
//! use `unsafe` (scoped `allow`s in [`arena`] and [`runtime`]); everything
//! above it is safe Rust.

mod arena;
mod compile;
mod encoder;
mod runtime;

use std::collections::HashMap;
use std::sync::Arc;

use powerchop_gisa::{Cpu, GisaError, Inst, Memory, Pc};
use powerchop_uarch::core::CoreModel;

use super::JitRunOutcome;
use crate::region_cache::TranslationId;

pub(super) const SUPPORTED: bool = true;

/// Result of a compile attempt.
pub(super) enum CompileOutcome {
    /// Native code was emitted and installed in the arena.
    Compiled { code_bytes: usize },
    /// The trace is not worth (or not able to be) compiled; the
    /// interpreter handles it. Remembered so dispatches don't retry.
    Ineligible,
}

/// Outcome of a single-lookup dispatch attempt (the hot path runs one
/// hash probe, not a residency check followed by a second probe).
pub(super) enum RunAttempt {
    /// Native code ran to completion (or faulted); here is its result.
    Ran(Result<JitRunOutcome, GisaError>),
    /// The trace is memoized as not compilable; interpret it.
    Ineligible,
    /// Never seen; the caller may compile on demand and retry.
    Unknown,
}

enum Entry {
    Compiled(runtime::CompiledTrace),
    Ineligible,
}

/// The native code cache: one compiled trace per translation ID, backed
/// by a W^X [`arena::Arena`].
pub(super) struct NativeEngine {
    arena: arena::Arena,
    traces: HashMap<TranslationId, Entry>,
    fp_delta: i32,
    fma: bool,
}

impl NativeEngine {
    pub(super) fn new() -> Self {
        let fp_delta = Cpu::jit_fp_delta();
        // The register files sit adjacently inside `Cpu`; templates encode
        // fp accesses as `[int_base + fp_delta + 8*idx]` disp32s.
        assert!(
            fp_delta > 0 && fp_delta < i64::from(i32::MAX >> 1) as isize,
            "fp register file must follow the int file within disp32 range"
        );
        NativeEngine {
            arena: arena::Arena::new(),
            traces: HashMap::new(),
            fp_delta: fp_delta as i32,
            fma: std::arch::is_x86_feature_detected!("fma"),
        }
    }

    pub(super) fn try_run(
        &mut self,
        id: TranslationId,
        cpu: &mut Cpu,
        mem: &mut Memory,
        core: &mut CoreModel,
    ) -> RunAttempt {
        match self.traces.get(&id) {
            Some(Entry::Compiled(ct)) => RunAttempt::Ran(runtime::run_compiled(ct, cpu, mem, core)),
            Some(Entry::Ineligible) => RunAttempt::Ineligible,
            None => RunAttempt::Unknown,
        }
    }

    pub(super) fn compile(
        &mut self,
        id: TranslationId,
        trace: &Arc<[Pc]>,
        insts: &Arc<[Inst]>,
    ) -> CompileOutcome {
        let compiled =
            compile::compile_trace(trace, insts, self.fp_delta, self.fma).and_then(|code| {
                self.arena
                    .install(&code)
                    .map(|(entry, chunk)| (code, entry, chunk))
            });
        match compiled {
            Some((code, entry, chunk)) => {
                let code_bytes = code.len();
                self.traces.insert(
                    id,
                    Entry::Compiled(runtime::CompiledTrace::new(
                        entry,
                        chunk,
                        code_bytes,
                        trace.clone(),
                        insts.clone(),
                    )),
                );
                CompileOutcome::Compiled { code_bytes }
            }
            None => {
                self.traces.insert(id, Entry::Ineligible);
                CompileOutcome::Ineligible
            }
        }
    }

    pub(super) fn code_len(&self, id: TranslationId) -> Option<usize> {
        match self.traces.get(&id)? {
            Entry::Compiled(ct) => Some(ct.code_len()),
            Entry::Ineligible => None,
        }
    }

    pub(super) fn resident(&self) -> usize {
        self.traces.len()
    }

    pub(super) fn remove(&mut self, id: TranslationId) {
        self.traces.remove(&id);
    }

    pub(super) fn clear(&mut self) {
        self.traces.clear();
        // Dropping the arena's handle frees each chunk as its last
        // compiled trace goes away (they just did).
        self.arena = arena::Arena::new();
    }
}
