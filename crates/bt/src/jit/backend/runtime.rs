//! The trampoline runtime: the POD context native code executes over, the
//! slow-step helper it calls for non-template instructions, and the Rust
//! wrapper that applies the batched accounting afterwards.
//!
//! Determinism argument, in full:
//!
//! - **Native instructions** mutate only guest int/fp registers, through
//!   the same `Cpu` storage the interpreter uses, with bit-exact
//!   semantics (wrapping `imul`; hardware-masked `shl`/`sar`; guarded
//!   `idiv` reproducing `wrapping_rem`-with-zero-divisor; hardware FMA
//!   only when available, matching `f64::mul_add`). Their retirement and
//!   issue-slot accounting is summed at compile time and applied in one
//!   batch after the trampoline returns; nothing reads those counters
//!   mid-trace (faults and telemetry drain only between machine steps),
//!   so the batched sums are indistinguishable from per-step updates.
//! - **Helper instructions** run [`Cpu::step_prefetched`] +
//!   [`CoreModel::on_step`] — literally the interpreter's code path — so
//!   caches, predictors, the VPU and memory see the identical access
//!   stream in the identical order.
//! - **The PC** is only ever written with values the interpreter would
//!   have produced: the helper sets `pc = trace[i]` before stepping
//!   (native predecessors cannot diverge — their successors are
//!   statically the next trace element), and a native trace tail records
//!   its statically-known successor.
//! - **Exits** mirror the interpreter loop exactly: error ⇒ propagate
//!   after applying pending accounting (`BtStats` untouched, matching the
//!   `?` in `execute_translation`); halt ⇒ stop; PC divergence from the
//!   recorded path ⇒ side exit; end of trace ⇒ normal exit.
#![allow(unsafe_code)]

use std::sync::Arc;

use powerchop_gisa::{Cpu, GisaError, Inst, Memory, Pc};
use powerchop_uarch::core::{CoreModel, ExecMode};

use super::super::JitRunOutcome;

/// The POD context shared with generated code. Only the leading fields
/// (whose offsets are exported below) are touched by native code; the
/// rest serve the helper on the Rust side.
#[repr(C)]
pub(crate) struct JitCtx {
    /// Base of the guest integer register file (fp file at `fp_delta`).
    int_base: *mut i64,
    /// The slow-step helper; called indirectly because the code arena
    /// may sit anywhere relative to the host text segment.
    helper: unsafe extern "C" fn(*mut JitCtx, u32) -> u32,
    /// Natively-executed guest instructions (flushed in batches).
    native_insts: u64,
    /// Their summed issue slots.
    native_slots: u64,
    /// PC to install when `pc_valid` — set by native trace tails.
    final_pc: u32,
    pc_valid: u8,
    /// Set by the helper when control flow left the recorded path.
    side_exit: u8,
    // ---- host-side fields (never read by generated code) ----
    cpu: *mut Cpu,
    mem: *mut Memory,
    core: *mut CoreModel,
    trace: *const Pc,
    insts: *const Inst,
    len: u32,
    helper_steps: u64,
    error: Option<GisaError>,
}

pub(super) const OFF_INT_BASE: i32 = std::mem::offset_of!(JitCtx, int_base) as i32;
pub(super) const OFF_HELPER: i32 = std::mem::offset_of!(JitCtx, helper) as i32;
pub(super) const OFF_NATIVE_INSTS: i32 = std::mem::offset_of!(JitCtx, native_insts) as i32;
pub(super) const OFF_NATIVE_SLOTS: i32 = std::mem::offset_of!(JitCtx, native_slots) as i32;
pub(super) const OFF_FINAL_PC: i32 = std::mem::offset_of!(JitCtx, final_pc) as i32;
pub(super) const OFF_PC_VALID: i32 = std::mem::offset_of!(JitCtx, pc_valid) as i32;

/// A trace compiled into the arena. Holds the backing chunk alive and the
/// trace/decoded-instruction Arcs the helper reads.
pub(super) struct CompiledTrace {
    entry: unsafe extern "C" fn(*mut JitCtx),
    _chunk: Arc<super::arena::Chunk>,
    code_len: usize,
    trace: Arc<[Pc]>,
    insts: Arc<[Inst]>,
}

impl CompiledTrace {
    pub(super) fn new(
        entry: unsafe extern "C" fn(*mut JitCtx),
        chunk: Arc<super::arena::Chunk>,
        code_len: usize,
        trace: Arc<[Pc]>,
        insts: Arc<[Inst]>,
    ) -> Self {
        CompiledTrace {
            entry,
            _chunk: chunk,
            code_len,
            trace,
            insts,
        }
    }

    pub(super) fn code_len(&self) -> usize {
        self.code_len
    }
}

/// Executes one instruction the templates don't cover, via the exact
/// interpreter step. Returns 0 to continue the trace, nonzero to exit.
unsafe extern "C" fn slow_step(ctx: *mut JitCtx, idx: u32) -> u32 {
    let ctx = unsafe { &mut *ctx };
    let cpu = unsafe { &mut *ctx.cpu };
    let mem = unsafe { &mut *ctx.mem };
    let core = unsafe { &mut *ctx.core };
    let i = idx as usize;
    debug_assert!(i < ctx.len as usize);
    // Native predecessors don't materialize the PC; architecturally it is
    // exactly this trace element (their successors are statically the
    // next element, and every helper verifies its own successor).
    let expected = unsafe { *ctx.trace.add(i) };
    cpu.jit_set_pc(expected);
    let inst = unsafe { *ctx.insts.add(i) };
    match cpu.step_prefetched(inst, mem) {
        Ok(info) => {
            core.on_step(&info, ExecMode::Translated);
            ctx.helper_steps += 1;
            if cpu.halted() {
                return 1;
            }
            let next = i + 1;
            if next == ctx.len as usize {
                return 1;
            }
            if cpu.pc() != unsafe { *ctx.trace.add(next) } {
                ctx.side_exit = 1;
                return 1;
            }
            0
        }
        Err(e) => {
            ctx.error = Some(e);
            1
        }
    }
}

/// Runs a compiled trace and settles its accounting, mirroring the
/// interpreter loop's observable effects exactly (see module docs).
pub(super) fn run_compiled(
    ct: &CompiledTrace,
    cpu: &mut Cpu,
    mem: &mut Memory,
    core: &mut CoreModel,
) -> Result<JitRunOutcome, GisaError> {
    let (int_base, fp_delta) = cpu.jit_reg_layout();
    debug_assert_eq!(fp_delta, Cpu::jit_fp_delta());
    let mut ctx = JitCtx {
        int_base,
        helper: slow_step,
        native_insts: 0,
        native_slots: 0,
        final_pc: 0,
        pc_valid: 0,
        side_exit: 0,
        cpu,
        mem,
        core: core as *mut CoreModel,
        trace: ct.trace.as_ptr(),
        insts: ct.insts.as_ptr(),
        len: ct.trace.len() as u32,
        helper_steps: 0,
        error: None,
    };
    unsafe { (ct.entry)(&mut ctx) };
    let native = ctx.native_insts;
    cpu.jit_add_retired(native);
    core.on_translated_block(native, ctx.native_slots);
    if let Some(e) = ctx.error.take() {
        return Err(e);
    }
    if ctx.pc_valid != 0 {
        cpu.jit_set_pc(Pc(ctx.final_pc));
    }
    Ok(JitRunOutcome {
        executed: native + ctx.helper_steps,
        side_exit: ctx.side_exit != 0,
    })
}
