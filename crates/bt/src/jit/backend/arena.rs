//! The executable code arena: mmap'd chunks with a strict W^X lifecycle.
//!
//! Chunks are mapped `PROT_READ|PROT_WRITE`, filled, then flipped to
//! `PROT_READ|PROT_EXEC`; appending to a partially-used chunk flips the
//! whole chunk back to RW for the copy and to RX afterwards. A page is
//! never writable and executable at the same time. Flipping the whole
//! chunk is safe because compilation happens between machine steps on one
//! thread — no native code is executing while code is installed.
//!
//! The workspace is dependency-free, so the three syscalls needed
//! (`mmap`, `mprotect`, `munmap`) are issued directly via inline asm.
#![allow(unsafe_code)]

use std::sync::Arc;

const SYS_MMAP: usize = 9;
const SYS_MPROTECT: usize = 10;
const SYS_MUNMAP: usize = 11;

const PROT_READ: usize = 0x1;
const PROT_WRITE: usize = 0x2;
const PROT_EXEC: usize = 0x4;
const MAP_PRIVATE: usize = 0x02;
const MAP_ANONYMOUS: usize = 0x20;

const PAGE: usize = 4096;
/// Default chunk size; most traces are well under 2 KiB of code, so one
/// chunk holds hundreds of translations.
const CHUNK: usize = 256 * 1024;

/// `mmap(NULL, len, prot, MAP_PRIVATE|MAP_ANONYMOUS, -1, 0)`.
unsafe fn sys_mmap(len: usize, prot: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MMAP as isize => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") prot,
            in("r10") MAP_PRIVATE | MAP_ANONYMOUS,
            in("r8") -1isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

unsafe fn sys_mprotect(addr: *mut u8, len: usize, prot: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MPROTECT as isize => ret,
            in("rdi") addr,
            in("rsi") len,
            in("rdx") prot,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

unsafe fn sys_munmap(addr: *mut u8, len: usize) {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP as isize => ret,
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    debug_assert_eq!(ret, 0, "munmap of an arena chunk failed");
}

/// One mmap'd region of executable code. Owned jointly by the arena (for
/// appending) and every compiled trace inside it (for lifetime): the
/// mapping is released when the last owner drops.
pub(crate) struct Chunk {
    base: *mut u8,
    cap: usize,
}

// The chunk is an exclusively-owned anonymous mapping; the raw pointer is
// not aliased mutably outside `Arena::install`, which holds `&mut` on the
// engine that owns every handle.
unsafe impl Send for Chunk {}
unsafe impl Sync for Chunk {}

impl Drop for Chunk {
    fn drop(&mut self) {
        unsafe { sys_munmap(self.base, self.cap) };
    }
}

/// Bump allocator over [`Chunk`]s. Full chunks are released to their
/// traces' ownership; the arena only retains the chunk it is filling.
pub(crate) struct Arena {
    current: Option<Arc<Chunk>>,
    used: usize,
}

impl Arena {
    pub(crate) fn new() -> Self {
        Arena {
            current: None,
            used: 0,
        }
    }

    /// Copies `code` into executable memory and returns its entry point
    /// plus a keep-alive handle on the backing chunk. Returns `None` if
    /// the kernel refuses the mapping (the caller falls back to the
    /// interpreter — the JIT must never be able to abort a run).
    pub(crate) fn install(
        &mut self,
        code: &[u8],
    ) -> Option<(
        unsafe extern "C" fn(*mut super::runtime::JitCtx),
        Arc<Chunk>,
    )> {
        // Align each entry point for the decoder's benefit.
        let len = code.len().checked_add(15)? & !15;
        let need_new = match &self.current {
            Some(chunk) => self.used + len > chunk.cap,
            None => true,
        };
        if need_new {
            let cap = CHUNK.max((len + PAGE - 1) & !(PAGE - 1));
            let base = unsafe { sys_mmap(cap, PROT_READ | PROT_WRITE) };
            // mmap reports failure as a small negative errno.
            if !(1..isize::MAX as usize).contains(&(base as usize))
                || !(base as usize).is_multiple_of(PAGE)
            {
                return None;
            }
            self.current = Some(Arc::new(Chunk {
                base: base as *mut u8,
                cap,
            }));
            self.used = 0;
        }
        let chunk = Arc::clone(self.current.as_ref()?);
        // W^X: writable (not executable) for the copy…
        if self.used > 0 {
            let rc = unsafe { sys_mprotect(chunk.base, chunk.cap, PROT_READ | PROT_WRITE) };
            if rc != 0 {
                return None;
            }
        }
        let entry_ptr = unsafe { chunk.base.add(self.used) };
        unsafe { std::ptr::copy_nonoverlapping(code.as_ptr(), entry_ptr, code.len()) };
        // …then executable (not writable) for good.
        let rc = unsafe { sys_mprotect(chunk.base, chunk.cap, PROT_READ | PROT_EXEC) };
        if rc != 0 {
            return None;
        }
        self.used += len;
        let entry = unsafe {
            std::mem::transmute::<*mut u8, unsafe extern "C" fn(*mut super::runtime::JitCtx)>(
                entry_ptr,
            )
        };
        Some((entry, chunk))
    }
}
