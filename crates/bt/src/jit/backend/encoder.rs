//! A minimal x86-64 assembler: exactly the encodings the trace templates
//! need, nothing more. Pure safe code — it only builds a byte vector.
//!
//! Memory operands are restricted to `[base + disp]` with `base` ∈
//! {`rbx`, `rbp`} (the register-file base and the context pointer), which
//! sidesteps the SIB-byte special cases of `rsp`/`r12` entirely.

/// A general-purpose register (hardware encoding 0–15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Gpr(pub u8);

pub(crate) const RAX: Gpr = Gpr(0);
pub(crate) const RCX: Gpr = Gpr(1);
pub(crate) const RDX: Gpr = Gpr(2);
pub(crate) const RBX: Gpr = Gpr(3);
pub(crate) const RBP: Gpr = Gpr(5);
pub(crate) const RSI: Gpr = Gpr(6);
pub(crate) const RDI: Gpr = Gpr(7);
pub(crate) const R12: Gpr = Gpr(12);
pub(crate) const R13: Gpr = Gpr(13);
pub(crate) const R14: Gpr = Gpr(14);
pub(crate) const R15: Gpr = Gpr(15);

/// An SSE register (only xmm0/xmm1 are used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Xmm(pub u8);

pub(crate) const XMM0: Xmm = Xmm(0);
pub(crate) const XMM1: Xmm = Xmm(1);

/// Two-operand 64-bit ALU ops, named by their reg←rm opcode and their
/// `/n` extension for the imm32 form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Cmp,
}

impl AluOp {
    fn reg_rm_opcode(self) -> u8 {
        match self {
            AluOp::Add => 0x03,
            AluOp::Sub => 0x2B,
            AluOp::And => 0x23,
            AluOp::Or => 0x0B,
            AluOp::Xor => 0x33,
            AluOp::Cmp => 0x3B,
        }
    }

    fn imm_ext(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 5,
            AluOp::And => 4,
            AluOp::Or => 1,
            AluOp::Xor => 6,
            AluOp::Cmp => 7,
        }
    }
}

/// Condition codes (the `cc` nibble of `Jcc`/`SETcc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cc {
    /// Equal / zero.
    E,
    /// Not equal / not zero.
    Ne,
}

impl Cc {
    fn nibble(self) -> u8 {
        match self {
            Cc::E => 0x4,
            Cc::Ne => 0x5,
        }
    }
}

/// A forward-reference label; `bind` fixes its position, `finish` patches
/// every rel32 that referenced it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Label(usize);

pub(crate) struct Asm {
    buf: Vec<u8>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    pub(crate) fn new() -> Self {
        Asm {
            buf: Vec::with_capacity(512),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    pub(crate) fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    pub(crate) fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.buf.len());
    }

    /// Resolves all fixups and returns the code bytes, or `None` if a
    /// referenced label was never bound or the code outgrew rel32 range
    /// (the compiler treats either as an ineligible trace).
    pub(crate) fn finish(mut self) -> Option<Vec<u8>> {
        for (pos, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label]?;
            let rel = (target as i64) - (pos as i64 + 4);
            let rel = i32::try_from(rel).ok()?;
            self.buf[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        Some(self.buf)
    }

    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.buf.extend_from_slice(bs);
    }

    /// REX prefix for a 64-bit op with ModRM `reg`/`rm` fields.
    fn rex_w(&mut self, reg: u8, rm: u8) {
        self.byte(0x48 | ((reg >> 3) << 2) | (rm >> 3));
    }

    /// REX prefix only if an extended register needs one (32/8-bit ops).
    fn rex_opt(&mut self, reg: u8, rm: u8) {
        let b = ((reg >> 3) << 2) | (rm >> 3);
        if b != 0 {
            self.byte(0x40 | b);
        }
    }

    fn modrm_rr(&mut self, reg: u8, rm: u8) {
        self.byte(0xC0 | ((reg & 7) << 3) | (rm & 7));
    }

    /// `[base + disp]` ModRM. `base` must be rbx or rbp (no SIB, and rbp
    /// with mod=00 would mean RIP-relative, so rbp always carries a disp).
    fn modrm_mem(&mut self, reg: u8, base: Gpr, disp: i32) {
        debug_assert!(
            base == RBX || base == RBP,
            "memory operands are limited to rbx/rbp bases"
        );
        let reg = reg & 7;
        let rm = base.0 & 7;
        if disp == 0 && base != RBP {
            self.byte((reg << 3) | rm);
        } else if i8::try_from(disp).is_ok() {
            self.byte(0x40 | (reg << 3) | rm);
            self.byte(disp as u8);
        } else {
            self.byte(0x80 | (reg << 3) | rm);
            self.bytes(&disp.to_le_bytes());
        }
    }

    // ---- moves ----

    /// `mov dst, src` (64-bit).
    pub(crate) fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex_w(dst.0, src.0);
        self.byte(0x8B);
        self.modrm_rr(dst.0, src.0);
    }

    /// `mov dst, qword [base + disp]`.
    pub(crate) fn mov_r_mem(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex_w(dst.0, base.0);
        self.byte(0x8B);
        self.modrm_mem(dst.0, base, disp);
    }

    /// `mov qword [base + disp], src`.
    pub(crate) fn mov_mem_r(&mut self, base: Gpr, disp: i32, src: Gpr) {
        self.rex_w(src.0, base.0);
        self.byte(0x89);
        self.modrm_mem(src.0, base, disp);
    }

    /// `mov dst, imm` — sign-extended imm32 form when it fits, movabs
    /// otherwise.
    pub(crate) fn mov_r_imm(&mut self, dst: Gpr, imm: i64) {
        if let Ok(imm32) = i32::try_from(imm) {
            self.rex_w(0, dst.0);
            self.byte(0xC7);
            self.modrm_rr(0, dst.0);
            self.bytes(&imm32.to_le_bytes());
        } else {
            self.rex_w(0, dst.0);
            self.byte(0xB8 | (dst.0 & 7));
            self.bytes(&imm.to_le_bytes());
        }
    }

    /// `mov qword [base + disp], imm32` (sign-extended).
    pub(crate) fn mov_mem_imm32(&mut self, base: Gpr, disp: i32, imm: i32) {
        self.rex_w(0, base.0);
        self.byte(0xC7);
        self.modrm_mem(0, base, disp);
        self.bytes(&imm.to_le_bytes());
    }

    /// `mov dword [base + disp], imm32` (32-bit store).
    pub(crate) fn mov_mem32_imm(&mut self, base: Gpr, disp: i32, imm: u32) {
        self.byte(0xC7);
        self.modrm_mem(0, base, disp);
        self.bytes(&imm.to_le_bytes());
    }

    /// `mov byte [base + disp], imm8`.
    pub(crate) fn mov_mem8_imm(&mut self, base: Gpr, disp: i32, imm: u8) {
        self.byte(0xC6);
        self.modrm_mem(0, base, disp);
        self.byte(imm);
    }

    // ---- ALU ----

    /// `op dst, src` (64-bit reg-reg).
    pub(crate) fn alu_rr(&mut self, op: AluOp, dst: Gpr, src: Gpr) {
        self.rex_w(dst.0, src.0);
        self.byte(op.reg_rm_opcode());
        self.modrm_rr(dst.0, src.0);
    }

    /// `op dst, qword [base + disp]`.
    pub(crate) fn alu_r_mem(&mut self, op: AluOp, dst: Gpr, base: Gpr, disp: i32) {
        self.rex_w(dst.0, base.0);
        self.byte(op.reg_rm_opcode());
        self.modrm_mem(dst.0, base, disp);
    }

    /// `op dst, imm32` (sign-extended).
    pub(crate) fn alu_r_imm32(&mut self, op: AluOp, dst: Gpr, imm: i32) {
        self.rex_w(0, dst.0);
        self.byte(0x81);
        self.modrm_rr(op.imm_ext(), dst.0);
        self.bytes(&imm.to_le_bytes());
    }

    /// `add qword [base + disp], imm32` (sign-extended).
    pub(crate) fn add_mem_imm32(&mut self, base: Gpr, disp: i32, imm: i32) {
        self.rex_w(0, base.0);
        self.byte(0x81);
        self.modrm_mem(AluOp::Add.imm_ext(), base, disp);
        self.bytes(&imm.to_le_bytes());
    }

    /// `cmp r, imm8` (sign-extended).
    pub(crate) fn cmp_r_imm8(&mut self, r: Gpr, imm: i8) {
        self.rex_w(0, r.0);
        self.byte(0x83);
        self.modrm_rr(AluOp::Cmp.imm_ext(), r.0);
        self.byte(imm as u8);
    }

    /// `imul dst, src` (64-bit, truncating — exactly `wrapping_mul`).
    pub(crate) fn imul_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex_w(dst.0, src.0);
        self.bytes(&[0x0F, 0xAF]);
        self.modrm_rr(dst.0, src.0);
    }

    /// `imul dst, qword [base + disp]`.
    pub(crate) fn imul_r_mem(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex_w(dst.0, base.0);
        self.bytes(&[0x0F, 0xAF]);
        self.modrm_mem(dst.0, base, disp);
    }

    /// `shl r, cl` (count masked to 63 by hardware, matching the guest).
    pub(crate) fn shl_cl(&mut self, r: Gpr) {
        self.rex_w(0, r.0);
        self.byte(0xD3);
        self.modrm_rr(4, r.0);
    }

    /// `sar r, cl` (arithmetic, count masked to 63).
    pub(crate) fn sar_cl(&mut self, r: Gpr) {
        self.rex_w(0, r.0);
        self.byte(0xD3);
        self.modrm_rr(7, r.0);
    }

    /// `setl cl`.
    pub(crate) fn setl_cl(&mut self) {
        self.bytes(&[0x0F, 0x9C, 0xC1]);
    }

    /// `xor dst32, src32` — the canonical zeroing idiom.
    pub(crate) fn xor32_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex_opt(dst.0, src.0);
        self.byte(0x33);
        self.modrm_rr(dst.0, src.0);
    }

    /// `test a, b` (64-bit).
    pub(crate) fn test_rr(&mut self, a: Gpr, b: Gpr) {
        self.rex_w(b.0, a.0);
        self.byte(0x85);
        self.modrm_rr(b.0, a.0);
    }

    /// `test a32, b32`.
    pub(crate) fn test32_rr(&mut self, a: Gpr, b: Gpr) {
        self.rex_opt(b.0, a.0);
        self.byte(0x85);
        self.modrm_rr(b.0, a.0);
    }

    /// `cqo` (sign-extend rax into rdx:rax).
    pub(crate) fn cqo(&mut self) {
        self.bytes(&[0x48, 0x99]);
    }

    /// `idiv r` (64-bit).
    pub(crate) fn idiv(&mut self, r: Gpr) {
        self.rex_w(0, r.0);
        self.byte(0xF7);
        self.modrm_rr(7, r.0);
    }

    // ---- stack / calls / flow ----

    pub(crate) fn push(&mut self, r: Gpr) {
        if r.0 >= 8 {
            self.byte(0x41);
        }
        self.byte(0x50 | (r.0 & 7));
    }

    pub(crate) fn pop(&mut self, r: Gpr) {
        if r.0 >= 8 {
            self.byte(0x41);
        }
        self.byte(0x58 | (r.0 & 7));
    }

    /// `sub rsp, imm8`.
    pub(crate) fn sub_rsp_imm8(&mut self, imm: i8) {
        self.bytes(&[0x48, 0x83, 0xEC, imm as u8]);
    }

    /// `add rsp, imm8`.
    pub(crate) fn add_rsp_imm8(&mut self, imm: i8) {
        self.bytes(&[0x48, 0x83, 0xC4, imm as u8]);
    }

    /// `call qword [base + disp]` — indirect, because the code arena may
    /// sit anywhere relative to the host text segment.
    pub(crate) fn call_mem(&mut self, base: Gpr, disp: i32) {
        self.byte(0xFF);
        self.modrm_mem(2, base, disp);
    }

    pub(crate) fn ret(&mut self) {
        self.byte(0xC3);
    }

    /// `jcc label` (rel32 form).
    pub(crate) fn jcc(&mut self, cc: Cc, l: Label) {
        self.bytes(&[0x0F, 0x80 | cc.nibble()]);
        self.fixups.push((self.buf.len(), l.0));
        self.bytes(&[0, 0, 0, 0]);
    }

    // ---- SSE scalar double ----

    /// `movsd x, qword [base + disp]`.
    pub(crate) fn movsd_x_mem(&mut self, x: Xmm, base: Gpr, disp: i32) {
        self.bytes(&[0xF2, 0x0F, 0x10]);
        self.modrm_mem(x.0, base, disp);
    }

    /// `movsd qword [base + disp], x`.
    pub(crate) fn movsd_mem_x(&mut self, base: Gpr, disp: i32, x: Xmm) {
        self.bytes(&[0xF2, 0x0F, 0x11]);
        self.modrm_mem(x.0, base, disp);
    }

    /// `addsd x, qword [base + disp]`.
    pub(crate) fn addsd_x_mem(&mut self, x: Xmm, base: Gpr, disp: i32) {
        self.bytes(&[0xF2, 0x0F, 0x58]);
        self.modrm_mem(x.0, base, disp);
    }

    /// `mulsd x, qword [base + disp]`.
    pub(crate) fn mulsd_x_mem(&mut self, x: Xmm, base: Gpr, disp: i32) {
        self.bytes(&[0xF2, 0x0F, 0x59]);
        self.modrm_mem(x.0, base, disp);
    }

    /// `cvtsi2sd x, r` (64-bit source).
    pub(crate) fn cvtsi2sd_x_r(&mut self, x: Xmm, r: Gpr) {
        self.byte(0xF2);
        self.rex_w(x.0, r.0);
        self.bytes(&[0x0F, 0x2A]);
        self.modrm_rr(x.0, r.0);
    }

    /// `vfmadd132sd dst, src2, qword [base + disp]`:
    /// `dst = dst * mem + src2`, fused — exactly `f64::mul_add`.
    pub(crate) fn vfmadd132sd_x_x_mem(&mut self, dst: Xmm, src2: Xmm, base: Gpr, disp: i32) {
        debug_assert!(dst.0 < 8 && src2.0 < 8 && (base == RBX || base == RBP));
        // 3-byte VEX: map 0F38, W=1, L=0, pp=66.
        self.byte(0xC4);
        self.byte(0xE2); // R̄X̄B̄=111, mmmmm=00010
        self.byte(0x80 | ((!src2.0 & 0xF) << 3) | 0x01);
        self.byte(0x99);
        self.modrm_mem(dst.0, base, disp);
    }
}
