//! Trace → x86-64 template compiler.
//!
//! Register convention (all callee-saved, so helper calls preserve them):
//!
//! | host reg  | role                                           |
//! |-----------|------------------------------------------------|
//! | `rbp`     | `*mut JitCtx`                                  |
//! | `rbx`     | guest integer register file base               |
//! | `r12–r15` | up to 4 hottest mapped guest integer registers |
//! | `rax/rcx/rdx`, `xmm0/xmm1` | scratch                       |
//!
//! Guest fp registers live at `[rbx + fp_delta + 8*idx]`. Instructions
//! whose timing accounting is pure issue-slot arithmetic get inline
//! templates; everything else calls the slow-step helper, which runs the
//! exact interpreter step. Before every helper call (and at trace exit)
//! the mapped registers and the batched instruction/slot counts are
//! flushed, so the helper — and the host after the trampoline returns —
//! always sees architecturally-consistent guest state.

use powerchop_gisa::{Inst, InstClass, Pc, Reg};

use super::encoder::{
    AluOp, Asm, Cc, Gpr, R12, R13, R14, R15, RAX, RBP, RBX, RCX, RDI, RDX, RSI, XMM0, XMM1,
};
use super::runtime::{
    OFF_FINAL_PC, OFF_HELPER, OFF_INT_BASE, OFF_NATIVE_INSTS, OFF_NATIVE_SLOTS, OFF_PC_VALID,
};

/// Traces with fewer native instructions than this aren't worth the
/// trampoline round trip; the interpreter runs them.
const MIN_NATIVE: usize = 2;

const MAPPED_HOSTS: [Gpr; 4] = [R12, R13, R14, R15];

/// Where a guest value lives during native execution.
#[derive(Clone, Copy)]
enum Loc {
    Host(Gpr),
    Mem(i32),
}

/// The guest-int-reg → host-reg assignment for one trace.
struct RegMap {
    /// `slots[i]` = guest register index held in `MAPPED_HOSTS[i]`.
    slots: Vec<u8>,
}

impl RegMap {
    /// Maps the most frequently used guest int registers (in native
    /// instructions; ties broken by lower index) onto r12–r15.
    fn choose(insts: &[Inst], fma: bool) -> RegMap {
        let mut freq = [0u32; 32];
        for inst in insts.iter().filter(|i| is_native(i, fma)) {
            for r in int_regs_of(inst) {
                freq[r.index()] += 1;
            }
        }
        let mut order: Vec<u8> = (0..32u8).filter(|&i| freq[i as usize] > 0).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(freq[i as usize]), i));
        order.truncate(MAPPED_HOSTS.len());
        RegMap { slots: order }
    }

    fn loc(&self, r: Reg) -> Loc {
        for (slot, &guest) in self.slots.iter().enumerate() {
            if usize::from(guest) == r.index() {
                return Loc::Host(MAPPED_HOSTS[slot]);
            }
        }
        Loc::Mem(8 * r.index() as i32)
    }
}

/// The guest integer registers a native instruction reads or writes.
fn int_regs_of(inst: &Inst) -> Vec<Reg> {
    match *inst {
        Inst::Li { rd, .. } => vec![rd],
        Inst::Addi { rd, rs, .. } => vec![rd, rs],
        Inst::Add { rd, rs, rt }
        | Inst::Sub { rd, rs, rt }
        | Inst::Mul { rd, rs, rt }
        | Inst::And { rd, rs, rt }
        | Inst::Or { rd, rs, rt }
        | Inst::Xor { rd, rs, rt }
        | Inst::Shl { rd, rs, rt }
        | Inst::Shr { rd, rs, rt }
        | Inst::Slt { rd, rs, rt }
        | Inst::Rem { rd, rs, rt } => vec![rd, rs, rt],
        Inst::Fcvt { rs, .. } => vec![rs],
        _ => Vec::new(),
    }
}

/// Whether `inst` has an inline native template. The criterion is that
/// `CoreModel::on_step(…, Translated)` for its class reduces to
/// `instructions += 1; slots += k` — no cache, predictor, VPU or
/// control-flow state — so batched accounting is arithmetically identical.
fn is_native(inst: &Inst, fma: bool) -> bool {
    match inst {
        Inst::Li { .. }
        | Inst::Addi { .. }
        | Inst::Add { .. }
        | Inst::Sub { .. }
        | Inst::Mul { .. }
        | Inst::And { .. }
        | Inst::Or { .. }
        | Inst::Xor { .. }
        | Inst::Shl { .. }
        | Inst::Shr { .. }
        | Inst::Slt { .. }
        | Inst::Rem { .. }
        | Inst::Fli { .. }
        | Inst::Fadd { .. }
        | Inst::Fmul { .. }
        | Inst::Fcvt { .. }
        | Inst::Nop
        | Inst::Jmp { .. } => true,
        // `f64::mul_add` must stay fused; without FMA hardware the helper
        // runs the interpreter's (software-fused) version.
        Inst::Fmadd { .. } => fma,
        _ => false,
    }
}

/// Issue slots `on_step(…, Translated)` charges for a native class.
fn slots_of(class: InstClass) -> u64 {
    match class {
        InstClass::IntMul => 2,
        _ => 1,
    }
}

/// Compiles a trace, or returns `None` when it is ineligible (decode
/// cache not hydrated, or too little native work to beat the interpreter).
pub(super) fn compile_trace(
    trace: &[Pc],
    insts: &[Inst],
    fp_delta: i32,
    fma: bool,
) -> Option<Vec<u8>> {
    if trace.is_empty() || insts.len() != trace.len() {
        return None;
    }
    let native_count = insts.iter().filter(|i| is_native(i, fma)).count();
    if native_count < MIN_NATIVE {
        return None;
    }
    let map = RegMap::choose(insts, fma);
    let fp = |idx: usize| fp_delta + 8 * idx as i32;

    let mut asm = Asm::new();
    let exit = asm.label();

    // Prologue: save callee-saved state, align the stack (ret addr + 6
    // pushes + 8 ≡ 0 mod 16), load the context and register-file bases.
    for r in [RBP, RBX, R12, R13, R14, R15] {
        asm.push(r);
    }
    asm.sub_rsp_imm8(8);
    asm.mov_rr(RBP, RDI);
    asm.mov_r_mem(RBX, RBP, OFF_INT_BASE);
    for (slot, &guest) in map.slots.iter().enumerate() {
        asm.mov_r_mem(MAPPED_HOSTS[slot], RBX, 8 * i32::from(guest));
    }

    // Batched accounting pending since the last flush point.
    let mut pending_insts: u32 = 0;
    let mut pending_slots: u32 = 0;

    let flush = |asm: &mut Asm, map: &RegMap, pending_insts: &mut u32, pending_slots: &mut u32| {
        if *pending_insts > 0 {
            asm.add_mem_imm32(RBP, OFF_NATIVE_INSTS, *pending_insts as i32);
            asm.add_mem_imm32(RBP, OFF_NATIVE_SLOTS, *pending_slots as i32);
            *pending_insts = 0;
            *pending_slots = 0;
        }
        for (slot, &guest) in map.slots.iter().enumerate() {
            asm.mov_mem_r(RBX, 8 * i32::from(guest), MAPPED_HOSTS[slot]);
        }
    };

    for (i, inst) in insts.iter().enumerate() {
        if is_native(inst, fma) {
            emit_native(&mut asm, inst, &map, &fp);
            pending_insts += 1;
            pending_slots += slots_of(inst.class()) as u32;
        } else {
            flush(&mut asm, &map, &mut pending_insts, &mut pending_slots);
            asm.mov_rr(RDI, RBP);
            asm.mov_r_imm(RSI, i as i64);
            asm.call_mem(RBP, OFF_HELPER);
            asm.test32_rr(RAX, RAX);
            asm.jcc(Cc::Ne, exit);
            // The helper ran the interpreter on the in-memory register
            // file; refresh the mapped copies.
            for (slot, &guest) in map.slots.iter().enumerate() {
                asm.mov_r_mem(MAPPED_HOSTS[slot], RBX, 8 * i32::from(guest));
            }
        }
    }

    // If the trace ends on a native instruction the PC was never
    // materialized; record the statically-known successor for the host.
    // (A trace ending on a helper instruction always exits through the
    // helper, which leaves the interpreter-updated PC in place.)
    let last = &insts[insts.len() - 1];
    if is_native(last, fma) {
        flush(&mut asm, &map, &mut pending_insts, &mut pending_slots);
        let final_pc = match last {
            Inst::Jmp { target } => target.0,
            _ => trace[trace.len() - 1].0 + 1,
        };
        asm.mov_mem32_imm(RBP, OFF_FINAL_PC, final_pc);
        asm.mov_mem8_imm(RBP, OFF_PC_VALID, 1);
    }

    asm.bind(exit);
    asm.add_rsp_imm8(8);
    for r in [R15, R14, R13, R12, RBX, RBP] {
        asm.pop(r);
    }
    asm.ret();
    asm.finish()
}

fn load(asm: &mut Asm, dst: Gpr, loc: Loc) {
    match loc {
        Loc::Host(r) => asm.mov_rr(dst, r),
        Loc::Mem(d) => asm.mov_r_mem(dst, RBX, d),
    }
}

fn store(asm: &mut Asm, loc: Loc, src: Gpr) {
    match loc {
        Loc::Host(r) => asm.mov_rr(r, src),
        Loc::Mem(d) => asm.mov_mem_r(RBX, d, src),
    }
}

fn alu(asm: &mut Asm, op: AluOp, dst: Gpr, src: Loc) {
    match src {
        Loc::Host(r) => asm.alu_rr(op, dst, r),
        Loc::Mem(d) => asm.alu_r_mem(op, dst, RBX, d),
    }
}

fn emit_native(asm: &mut Asm, inst: &Inst, map: &RegMap, fp: &dyn Fn(usize) -> i32) {
    match *inst {
        Inst::Li { rd, imm } => match (map.loc(rd), i32::try_from(imm)) {
            (Loc::Host(r), _) => asm.mov_r_imm(r, imm),
            (Loc::Mem(d), Ok(imm32)) => asm.mov_mem_imm32(RBX, d, imm32),
            (loc @ Loc::Mem(_), Err(_)) => {
                asm.mov_r_imm(RAX, imm);
                store(asm, loc, RAX);
            }
        },
        Inst::Addi { rd, rs, imm } => {
            load(asm, RAX, map.loc(rs));
            if let Ok(imm32) = i32::try_from(imm) {
                asm.alu_r_imm32(AluOp::Add, RAX, imm32);
            } else {
                asm.mov_r_imm(RCX, imm);
                asm.alu_rr(AluOp::Add, RAX, RCX);
            }
            store(asm, map.loc(rd), RAX);
        }
        Inst::Add { rd, rs, rt }
        | Inst::Sub { rd, rs, rt }
        | Inst::And { rd, rs, rt }
        | Inst::Or { rd, rs, rt }
        | Inst::Xor { rd, rs, rt } => {
            let op = match inst {
                Inst::Add { .. } => AluOp::Add,
                Inst::Sub { .. } => AluOp::Sub,
                Inst::And { .. } => AluOp::And,
                Inst::Or { .. } => AluOp::Or,
                _ => AluOp::Xor,
            };
            load(asm, RAX, map.loc(rs));
            alu(asm, op, RAX, map.loc(rt));
            store(asm, map.loc(rd), RAX);
        }
        Inst::Mul { rd, rs, rt } => {
            load(asm, RAX, map.loc(rs));
            match map.loc(rt) {
                Loc::Host(r) => asm.imul_rr(RAX, r),
                Loc::Mem(d) => asm.imul_r_mem(RAX, RBX, d),
            }
            store(asm, map.loc(rd), RAX);
        }
        Inst::Shl { rd, rs, rt } => {
            load(asm, RAX, map.loc(rs));
            load(asm, RCX, map.loc(rt));
            asm.shl_cl(RAX);
            store(asm, map.loc(rd), RAX);
        }
        Inst::Shr { rd, rs, rt } => {
            load(asm, RAX, map.loc(rs));
            load(asm, RCX, map.loc(rt));
            asm.sar_cl(RAX);
            store(asm, map.loc(rd), RAX);
        }
        Inst::Slt { rd, rs, rt } => {
            asm.xor32_rr(RCX, RCX);
            load(asm, RAX, map.loc(rs));
            alu(asm, AluOp::Cmp, RAX, map.loc(rt));
            asm.setl_cl();
            store(asm, map.loc(rd), RCX);
        }
        Inst::Rem { rd, rs, rt } => {
            // Guest semantics: 0 when the divisor is 0; wrapping_rem
            // makes MIN % -1 == 0. x86 idiv faults on both, so guard
            // them (x % -1 == 0 for every x, so both guards produce the
            // pre-zeroed rdx).
            load(asm, RAX, map.loc(rs));
            load(asm, RCX, map.loc(rt));
            asm.xor32_rr(RDX, RDX);
            let done = asm.label();
            asm.test_rr(RCX, RCX);
            asm.jcc(Cc::E, done);
            asm.cmp_r_imm8(RCX, -1);
            asm.jcc(Cc::E, done);
            asm.cqo();
            asm.idiv(RCX);
            asm.bind(done);
            store(asm, map.loc(rd), RDX);
        }
        Inst::Fli { fd, imm } => {
            asm.mov_r_imm(RAX, imm.to_bits() as i64);
            asm.mov_mem_r(RBX, fp(fd.index()), RAX);
        }
        Inst::Fadd { fd, fs, ft } => {
            asm.movsd_x_mem(XMM0, RBX, fp(fs.index()));
            asm.addsd_x_mem(XMM0, RBX, fp(ft.index()));
            asm.movsd_mem_x(RBX, fp(fd.index()), XMM0);
        }
        Inst::Fmul { fd, fs, ft } => {
            asm.movsd_x_mem(XMM0, RBX, fp(fs.index()));
            asm.mulsd_x_mem(XMM0, RBX, fp(ft.index()));
            asm.movsd_mem_x(RBX, fp(fd.index()), XMM0);
        }
        Inst::Fmadd { fd, fs, ft, fa } => {
            // fd = fs * ft + fa, fused exactly like `f64::mul_add`.
            asm.movsd_x_mem(XMM0, RBX, fp(fs.index()));
            asm.movsd_x_mem(XMM1, RBX, fp(fa.index()));
            asm.vfmadd132sd_x_x_mem(XMM0, XMM1, RBX, fp(ft.index()));
            asm.movsd_mem_x(RBX, fp(fd.index()), XMM0);
        }
        Inst::Fcvt { fd, rs } => {
            load(asm, RAX, map.loc(rs));
            asm.cvtsi2sd_x_r(XMM0, RAX);
            asm.movsd_mem_x(RBX, fp(fd.index()), XMM0);
        }
        // Pure accounting: a fused jump's successor is statically the
        // next trace element, and a nop does nothing.
        Inst::Jmp { .. } | Inst::Nop => {}
        _ => unreachable!("emit_native called on a helper instruction"),
    }
}
