//! The nucleus: the BT component that handles interrupts and exceptions.
//!
//! In a hybrid processor the nucleus services host-ISA and
//! microarchitectural interrupts (paper §II-A) — for PowerChop, the
//! interrupt of interest is the PVT miss that invokes the Criticality
//! Decision Engine (paper §IV-C3: "the most significant additional source
//! of overhead over the conventional BT are additional interrupts
//! triggered by PVT misses"). The nucleus accounts for the time spent in
//! such software handlers by stalling the core.

use powerchop_uarch::core::CoreModel;

/// Cumulative nucleus activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NucleusStats {
    /// Interrupts serviced.
    pub interrupts: u64,
    /// Total handler cycles charged to the core.
    pub handler_cycles: u64,
}

impl powerchop_telemetry::MetricSource for NucleusStats {
    fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set("bt_nucleus_interrupts_total", self.interrupts);
        reg.counter_set("bt_nucleus_handler_cycles_total", self.handler_cycles);
    }
}

/// The interrupt/exception handler of the BT layer.
///
/// # Examples
///
/// ```
/// use powerchop_bt::nucleus::Nucleus;
/// use powerchop_uarch::{config::CoreConfig, core::CoreModel};
///
/// let mut core = CoreModel::new(&CoreConfig::server());
/// let mut nucleus = Nucleus::new();
/// nucleus.raise(&mut core, 250); // e.g. a PVT-miss handler
/// assert_eq!(nucleus.stats().interrupts, 1);
/// assert_eq!(core.cycles(), 250);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Nucleus {
    stats: NucleusStats,
}

impl Nucleus {
    /// Creates a nucleus with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Nucleus::default()
    }

    /// Services one interrupt whose software handler runs for
    /// `handler_cycles`, stalling application execution for that long.
    pub fn raise(&mut self, core: &mut CoreModel, handler_cycles: u64) {
        self.stats.interrupts += 1;
        self.stats.handler_cycles += handler_cycles;
        core.add_stall(handler_cycles);
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> NucleusStats {
        self.stats
    }

    /// Serializes the nucleus counters.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        w.put_u64(self.stats.interrupts);
        w.put_u64(self.stats.handler_cycles);
    }

    /// Restores counters written by [`Nucleus::snapshot_to`] in place.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        self.stats.interrupts = r.take_u64()?;
        self.stats.handler_cycles = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_uarch::config::CoreConfig;

    #[test]
    fn raise_accumulates_and_stalls() {
        let mut core = CoreModel::new(&CoreConfig::mobile());
        let mut n = Nucleus::new();
        n.raise(&mut core, 100);
        n.raise(&mut core, 50);
        assert_eq!(
            n.stats(),
            NucleusStats {
                interrupts: 2,
                handler_cycles: 150
            }
        );
        assert_eq!(core.cycles(), 150);
    }
}
