//! The binary-translation (BT) subsystem of the hybrid processor.
//!
//! Hybrid architectures (Transmeta Crusoe/Efficeon, NVIDIA Project Denver)
//! place a software BT layer below the ISA interface (paper §II-A). This
//! crate implements that layer, modelled after the Transmeta design the
//! paper describes, with its three principal components:
//!
//! - the **interpreter** ([`Machine`] slow path) — decodes and executes
//!   guest instructions sequentially while collecting hotness statistics,
//! - the **translator** ([`translator`]) — when a region reaches the
//!   hotness threshold, produces an optimized *translation* (a short trace
//!   of the dynamic code sequence) and installs it in the **region cache**
//!   ([`region_cache::RegionCache`]),
//! - the **nucleus** ([`nucleus::Nucleus`]) — handles interrupts raised to
//!   the software layer (PowerChop's CDE is invoked through it).
//!
//! Translations are the primitive PowerChop builds on: the HTB counts
//! translation executions, and phase signatures are sets of translation
//! IDs (the low 32 bits of each translation's head PC).
//!
//! # Examples
//!
//! ```
//! use powerchop_bt::{BtConfig, Machine, MachineEvent};
//! use powerchop_gisa::{ProgramBuilder, Reg};
//! use powerchop_uarch::{config::CoreConfig, core::CoreModel};
//!
//! # fn main() -> Result<(), powerchop_gisa::GisaError> {
//! let r0 = Reg::new(0)?;
//! let r1 = Reg::new(1)?;
//! let mut b = ProgramBuilder::new("hot-loop");
//! b.li(r0, 0).li(r1, 100_000);
//! let top = b.bind_label();
//! b.addi(r0, r0, 1);
//! b.blt(r0, r1, top);
//! b.halt();
//! let program = b.build()?;
//!
//! let cfg = CoreConfig::server();
//! let mut core = CoreModel::new(&cfg);
//! let mut machine = Machine::new(&program, BtConfig::default());
//! while !matches!(machine.step(&mut core)?, MachineEvent::Halted) {}
//! // The hot loop ran from the region cache, not the interpreter.
//! let stats = machine.stats();
//! assert!(stats.translated_instructions > stats.interpreted_instructions);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the JIT backend (`jit::backend`) is the one
// place in the workspace that needs `unsafe` (an mmap'd executable code
// arena and an `extern "C"` trampoline) and scopes its own allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod jit;
mod machine;
pub mod nucleus;
pub mod region_cache;
pub mod translator;

pub use jit::{JitEngine, JitMode, JitReport, JitStats};
pub use machine::{BtConfig, BtStats, Machine, MachineEvent};
pub use region_cache::TranslationId;
pub use translator::Translation;
