//! Property-based tests of the binary-translation layer's core
//! guarantee: translation is architecturally transparent. Random guest
//! programs must produce identical results under pure interpretation,
//! under every hot-threshold/trace-length configuration, and under
//! injected context switches and region-cache invalidations.

use powerchop_bt::{BtConfig, Machine};
use powerchop_faults::check::cases;
use powerchop_faults::SimRng;
use powerchop_gisa::{Cond, Program, ProgramBuilder, Reg};
use powerchop_uarch::config::CoreConfig;
use powerchop_uarch::core::CoreModel;

/// Generates a random but always-terminating guest program: a counted
/// outer loop whose body is straight-line arithmetic with optional
/// data-dependent inner branching.
fn arb_program(rng: &mut SimRng) -> Program {
    let r = |i: u8| Reg::new(i).expect("register index in range");
    let iters = 1 + rng.gen_range(199) as i64;
    let body_ops = 1 + rng.gen_range(11) as usize;
    let diamond = rng.gen_bool(0.5);
    let modulus = rng.gen_range(64) as i64;

    let mut b = ProgramBuilder::new("prop-program");
    b.li(r(0), 0).li(r(9), iters);
    let top = b.bind_label();
    for _ in 0..body_ops {
        let kind = rng.gen_range(5);
        let rd = r(1 + rng.gen_range(7) as u8);
        let rs = r(1 + rng.gen_range(7) as u8);
        let rt = r(1 + rng.gen_range(7) as u8);
        match kind {
            0 => b.add(rd, rs, rt),
            1 => b.xor(rd, rs, rt),
            2 => b.mul(rd, rs, rt),
            3 => b.sub(rd, rs, rt),
            _ => b.shr(rd, rs, rt),
        };
    }
    if diamond {
        let other = b.label();
        let join = b.label();
        b.li(r(10), modulus.max(2));
        b.rem(r(11), r(0), r(10));
        b.li(r(12), modulus.max(2) / 2);
        b.branch(Cond::Lt, r(11), r(12), other);
        b.addi(r(13), r(13), 1);
        b.jmp(join);
        b.bind(other).expect("label bound once");
        b.addi(r(14), r(14), 1);
        b.bind(join).expect("label bound once");
    }
    b.addi(r(0), r(0), 1);
    b.blt(r(0), r(9), top);
    b.halt();
    b.build().expect("generated program is well-formed")
}

fn interpret_reference(program: &Program) -> Machine<'_> {
    let mut core = CoreModel::new(&CoreConfig::server());
    let mut reference = Machine::new(
        program,
        BtConfig {
            hot_threshold: u32::MAX,
            ..BtConfig::default()
        },
    );
    reference
        .run(&mut core, u64::MAX)
        .expect("generated programs execute cleanly");
    reference
}

/// The BT layer never changes architectural results, whatever its
/// translation policy.
#[test]
fn translation_transparency() {
    cases("translation transparency", 64, |rng| {
        let program = arb_program(rng);
        let threshold = [1u32, 3, 50, u32::MAX][rng.gen_range(4) as usize];
        let max_trace = 2 + rng.gen_range(62) as usize;
        let reference = interpret_reference(&program);

        let mut core = CoreModel::new(&CoreConfig::server());
        let mut machine = Machine::new(
            &program,
            BtConfig {
                hot_threshold: threshold,
                max_trace_len: max_trace,
                ..BtConfig::default()
            },
        );
        machine
            .run(&mut core, u64::MAX)
            .expect("generated programs execute cleanly");

        assert!(machine.halted() && reference.halted());
        assert_eq!(
            machine.cpu(),
            reference.cpu(),
            "architectural state must match"
        );
        assert_eq!(machine.retired(), reference.retired());
    });
}

/// Injected context switches and region-cache invalidations perturb
/// timing and translation coverage but never architectural results.
#[test]
fn faults_preserve_transparency() {
    cases("fault transparency", 48, |rng| {
        let program = arb_program(rng);
        let reference = interpret_reference(&program);

        let mut core = CoreModel::new(&CoreConfig::server());
        let mut machine = Machine::new(
            &program,
            BtConfig {
                hot_threshold: 2,
                ..BtConfig::default()
            },
        );
        let switch_every = 50 + rng.gen_range(400);
        let invalidate_every = 100 + rng.gen_range(900);
        let fraction = rng.gen_f64();
        let mut steps = 0u64;
        while !machine.halted() {
            machine
                .step(&mut core)
                .expect("generated programs execute cleanly");
            steps += 1;
            if steps.is_multiple_of(switch_every) {
                machine.on_context_switch();
            }
            if steps.is_multiple_of(invalidate_every) {
                machine.invalidate_regions(fraction, rng.next_u64());
            }
        }
        assert_eq!(machine.cpu(), reference.cpu(), "faults must be timing-only");
        assert_eq!(machine.retired(), reference.retired());
    });
}

/// BT statistics are internally consistent for any program/policy.
#[test]
fn bt_stats_consistent() {
    cases("bt stats consistent", 64, |rng| {
        let program = arb_program(rng);
        let threshold = [1u32, 8, 128][rng.gen_range(3) as usize];
        let mut core = CoreModel::new(&CoreConfig::server());
        let mut machine = Machine::new(
            &program,
            BtConfig {
                hot_threshold: threshold,
                ..BtConfig::default()
            },
        );
        machine
            .run(&mut core, u64::MAX)
            .expect("generated programs execute cleanly");
        let s = machine.stats();
        assert_eq!(
            s.interpreted_instructions + s.translated_instructions,
            machine.retired()
        );
        assert!(s.side_exits <= s.translation_executions);
        assert!(s.translations_built as usize >= machine.region_cache().len());
        assert_eq!(core.stats().instructions, machine.retired());
    });
}

/// Lower hot thresholds never produce *fewer* translated instructions.
#[test]
fn hotter_translation_translates_more() {
    cases("hotter translates more", 64, |rng| {
        let program = arb_program(rng);
        let cfg = CoreConfig::server();
        let mut eager_core = CoreModel::new(&cfg);
        let mut eager = Machine::new(
            &program,
            BtConfig {
                hot_threshold: 1,
                ..BtConfig::default()
            },
        );
        eager
            .run(&mut eager_core, u64::MAX)
            .expect("generated programs execute cleanly");
        let mut lazy_core = CoreModel::new(&cfg);
        let mut lazy = Machine::new(
            &program,
            BtConfig {
                hot_threshold: 64,
                ..BtConfig::default()
            },
        );
        lazy.run(&mut lazy_core, u64::MAX)
            .expect("generated programs execute cleanly");
        assert!(eager.stats().translated_instructions >= lazy.stats().translated_instructions);
    });
}
