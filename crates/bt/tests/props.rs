//! Property-based tests of the binary-translation layer's core
//! guarantee: translation is architecturally transparent. Random guest
//! programs must produce identical results under pure interpretation and
//! under every hot-threshold/trace-length configuration.

use proptest::prelude::*;

use powerchop_bt::{BtConfig, Machine};
use powerchop_gisa::{Cond, Program, ProgramBuilder, Reg};
use powerchop_uarch::config::CoreConfig;
use powerchop_uarch::core::CoreModel;

/// Generates a random but always-terminating guest program: a counted
/// outer loop whose body is straight-line arithmetic with optional
/// data-dependent inner branching.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        1i64..200,                                        // outer iterations
        prop::collection::vec((0u8..5, 1u8..8, 1u8..8, 1u8..8), 1..12), // body ops
        any::<bool>(),                                    // include a diamond
        0i64..64,                                         // diamond modulus basis
    )
        .prop_map(|(iters, ops, diamond, modulus)| {
            let r = |i: u8| Reg::new(i).unwrap();
            let mut b = ProgramBuilder::new("prop-program");
            b.li(r(0), 0).li(r(9), iters);
            let top = b.bind_label();
            for (kind, rd, rs, rt) in &ops {
                let (rd, rs, rt) = (r(*rd), r(*rs), r(*rt));
                match kind {
                    0 => b.add(rd, rs, rt),
                    1 => b.xor(rd, rs, rt),
                    2 => b.mul(rd, rs, rt),
                    3 => b.sub(rd, rs, rt),
                    _ => b.shr(rd, rs, rt),
                };
            }
            if diamond {
                let other = b.label();
                let join = b.label();
                b.li(r(10), modulus.max(2));
                b.rem(r(11), r(0), r(10));
                b.li(r(12), modulus.max(2) / 2);
                b.branch(Cond::Lt, r(11), r(12), other);
                b.addi(r(13), r(13), 1);
                b.jmp(join);
                b.bind(other).unwrap();
                b.addi(r(14), r(14), 1);
                b.bind(join).unwrap();
            }
            b.addi(r(0), r(0), 1);
            b.blt(r(0), r(9), top);
            b.halt();
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The BT layer never changes architectural results, whatever its
    /// translation policy.
    #[test]
    fn translation_transparency(program in arb_program(),
                                threshold in prop::sample::select(vec![1u32, 3, 50, u32::MAX]),
                                max_trace in 2usize..64) {
        let cfg = CoreConfig::server();

        // Reference: pure interpretation.
        let mut ref_core = CoreModel::new(&cfg);
        let mut reference = Machine::new(
            &program,
            BtConfig { hot_threshold: u32::MAX, ..BtConfig::default() },
        );
        reference.run(&mut ref_core, u64::MAX).unwrap();

        // Hybrid execution with the sampled policy.
        let mut core = CoreModel::new(&cfg);
        let mut machine = Machine::new(
            &program,
            BtConfig { hot_threshold: threshold, max_trace_len: max_trace, ..BtConfig::default() },
        );
        machine.run(&mut core, u64::MAX).unwrap();

        prop_assert!(machine.halted() && reference.halted());
        prop_assert_eq!(machine.cpu(), reference.cpu(), "architectural state must match");
        prop_assert_eq!(machine.retired(), reference.retired());
    }

    /// BT statistics are internally consistent for any program/policy.
    #[test]
    fn bt_stats_consistent(program in arb_program(),
                           threshold in prop::sample::select(vec![1u32, 8, 128])) {
        let cfg = CoreConfig::server();
        let mut core = CoreModel::new(&cfg);
        let mut machine = Machine::new(
            &program,
            BtConfig { hot_threshold: threshold, ..BtConfig::default() },
        );
        machine.run(&mut core, u64::MAX).unwrap();
        let s = machine.stats();
        prop_assert_eq!(
            s.interpreted_instructions + s.translated_instructions,
            machine.retired()
        );
        prop_assert!(s.side_exits <= s.translation_executions);
        prop_assert!(s.translations_built as usize >= machine.region_cache().len());
        prop_assert_eq!(core.stats().instructions, machine.retired());
    }

    /// Lower hot thresholds never produce *fewer* translated instructions.
    #[test]
    fn hotter_translation_translates_more(program in arb_program()) {
        let cfg = CoreConfig::server();
        let mut eager_core = CoreModel::new(&cfg);
        let mut eager = Machine::new(&program, BtConfig { hot_threshold: 1, ..BtConfig::default() });
        eager.run(&mut eager_core, u64::MAX).unwrap();
        let mut lazy_core = CoreModel::new(&cfg);
        let mut lazy = Machine::new(&program, BtConfig { hot_threshold: 64, ..BtConfig::default() });
        lazy.run(&mut lazy_core, u64::MAX).unwrap();
        prop_assert!(
            eager.stats().translated_instructions >= lazy.stats().translated_instructions
        );
    }
}
