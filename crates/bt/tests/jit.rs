//! Machine-level differential tests: JIT-on and JIT-off execution must be
//! bit-identical in every observable — architectural CPU state, retired
//! counts, BT statistics, and the core timing model's cycle/event totals.

use powerchop_bt::{BtConfig, JitMode, Machine, MachineEvent};
use powerchop_gisa::{FReg, Program, ProgramBuilder, Reg};
use powerchop_uarch::config::CoreConfig;
use powerchop_uarch::core::CoreModel;

fn r(i: u8) -> Reg {
    Reg::new(i).expect("register index in range")
}

fn f(i: u8) -> FReg {
    FReg::new(i).expect("fp register index in range")
}

/// A hot loop exercising every native template — including the `rem`
/// corner cases (zero divisor, `MIN % -1`), shift counts above 63, large
/// immediates, `slt`, fp arithmetic, fmadd and int→fp conversion — plus
/// helper-path instructions (loads, stores, branches, calls) so traces
/// interleave native segments with slow steps.
fn torture_program() -> Program {
    let mut b = ProgramBuilder::new("jit-torture");
    let (acc, i, n, tmp, div, big) = (r(1), r(2), r(3), r(4), r(5), r(6));
    b.li(acc, 0).li(i, 0).li(n, 5_000);
    b.li(big, i64::MAX - 12345);
    b.li(div, 0); // first iterations divide by zero
    let helper_fn = b.label();
    let after = b.label();
    b.jmp(after);
    b.bind(helper_fn).expect("bind helper");
    b.add(acc, acc, i).ret();
    b.bind(after).expect("bind after");
    let top = b.bind_label();
    // Native-heavy body.
    b.addi(i, i, 1);
    b.add(tmp, acc, i);
    b.sub(tmp, tmp, acc);
    b.mul(tmp, tmp, big); // wrapping multiply
    b.xor(tmp, tmp, acc);
    b.and(tmp, tmp, big);
    b.or(acc, acc, tmp);
    b.shl(tmp, acc, i); // shift counts grow past 63
    b.shr(tmp, tmp, i);
    b.slt(tmp, tmp, acc);
    b.rem(tmp, big, div); // div is 0 early, then varies
    b.rem(tmp, big, i);
    b.li(tmp, i64::MIN);
    b.li(div, -1);
    b.rem(tmp, tmp, div); // MIN % -1 must not fault
    b.addi(div, i, -2_500); // crosses zero mid-run
                            // FP segment.
    b.fcvt(f(0), i);
    b.fli(f(1), 1.000_000_1);
    b.fmul(f(2), f(0), f(1));
    b.fadd(f(3), f(2), f(0));
    b.fmadd(f(3), f(2), f(1), f(3));
    // Helper segment: memory traffic and a call.
    b.store(acc, n, 64);
    b.load(tmp, n, 64);
    b.add(acc, acc, tmp);
    b.call(helper_fn);
    b.blt(i, n, top);
    b.halt();
    b.build().expect("torture program is well-formed")
}

fn run_to_halt(mode: JitMode, config: BtConfig, program: &Program) -> (Machine<'_>, CoreModel) {
    let mut core = CoreModel::new(&CoreConfig::server());
    let mut machine = Machine::new(program, config);
    machine.set_jit_mode(mode);
    while !matches!(
        machine.step(&mut core).expect("no guest faults"),
        MachineEvent::Halted
    ) {}
    (machine, core)
}

fn assert_identical(a: &(Machine<'_>, CoreModel), b: &(Machine<'_>, CoreModel)) {
    assert_eq!(a.0.cpu(), b.0.cpu(), "architectural CPU state diverged");
    assert_eq!(a.0.retired(), b.0.retired(), "retired counts diverged");
    assert_eq!(a.0.stats(), b.0.stats(), "BT statistics diverged");
    assert_eq!(a.1.cycles(), b.1.cycles(), "core cycles diverged");
    assert_eq!(a.1.stats(), b.1.stats(), "core event counters diverged");
}

#[test]
fn jit_and_interpreter_are_bit_identical() {
    let program = torture_program();
    let interp = run_to_halt(JitMode::Off, BtConfig::default(), &program);
    let jit = run_to_halt(JitMode::On, BtConfig::default(), &program);
    assert_identical(&interp, &jit);
    if cfg!(all(
        target_arch = "x86_64",
        target_os = "linux",
        not(powerchop_force_interp)
    )) {
        let stats = jit.0.jit_stats();
        assert!(stats.translations_compiled > 0, "nothing was compiled");
        assert!(stats.exec_hits > 0, "compiled code never ran");
        assert!(stats.code_bytes > 0);
        assert!(jit.0.jit_report().is_some());
    }
    assert!(
        interp.0.jit_report().is_none(),
        "JIT-off runs carry no report"
    );
}

#[test]
fn superblock_traces_stay_identical() {
    let program = torture_program();
    let config = BtConfig {
        superblocks: true,
        ..BtConfig::default()
    };
    let interp = run_to_halt(JitMode::Off, config, &program);
    let jit = run_to_halt(JitMode::On, config, &program);
    assert_identical(&interp, &jit);
}

#[test]
fn invalidation_drops_code_and_recompiles_identically() {
    let program = torture_program();
    let run = |mode: JitMode| {
        let mut core = CoreModel::new(&CoreConfig::server());
        let mut machine = Machine::new(&program, BtConfig::default());
        machine.set_jit_mode(mode);
        let mut steps = 0u64;
        while !machine.halted() {
            machine.step(&mut core).expect("no guest faults");
            steps += 1;
            if steps.is_multiple_of(2_000) {
                machine.invalidate_regions(0.5, steps);
            }
            if steps.is_multiple_of(3_000) {
                machine.on_context_switch();
            }
        }
        (machine, core)
    };
    let interp = run(JitMode::Off);
    let jit = run(JitMode::On);
    assert_identical(&interp, &jit);
}

#[test]
fn checkpoints_cross_between_jit_and_interpreter() {
    let program = torture_program();
    // Run halfway under one mode, snapshot, restore under the other,
    // finish — in both directions — and compare against straight runs.
    let straight = run_to_halt(JitMode::Off, BtConfig::default(), &program);
    for (first, second) in [(JitMode::On, JitMode::Off), (JitMode::Off, JitMode::On)] {
        let mut core = CoreModel::new(&CoreConfig::server());
        let mut machine = Machine::new(&program, BtConfig::default());
        machine.set_jit_mode(first);
        for _ in 0..10_000 {
            if machine.halted() {
                break;
            }
            machine.step(&mut core).expect("no guest faults");
        }
        let mut w = powerchop_checkpoint::ByteWriter::new();
        machine.snapshot_to(&mut w);
        let mut core_w = powerchop_checkpoint::ByteWriter::new();
        core.snapshot_to(&mut core_w);
        let (bytes, core_bytes) = (w.into_bytes(), core_w.into_bytes());

        let mut resumed = Machine::new(&program, BtConfig::default());
        resumed.set_jit_mode(second);
        let mut r = powerchop_checkpoint::ByteReader::new(&bytes);
        resumed.restore_from(&mut r).expect("restore machine");
        let mut resumed_core = CoreModel::new(&CoreConfig::server());
        let mut core_r = powerchop_checkpoint::ByteReader::new(&core_bytes);
        resumed_core
            .restore_from(&mut core_r)
            .expect("restore core");
        while !matches!(
            resumed.step(&mut resumed_core).expect("no guest faults"),
            MachineEvent::Halted
        ) {}
        assert_identical(&straight, &(resumed, resumed_core));
    }
}

#[test]
fn jit_mode_parsing() {
    assert_eq!(JitMode::parse("on"), Some(JitMode::On));
    assert_eq!(JitMode::parse("OFF"), Some(JitMode::Off));
    assert_eq!(JitMode::parse("auto"), Some(JitMode::Auto));
    assert_eq!(JitMode::parse("1"), Some(JitMode::On));
    assert_eq!(JitMode::parse("0"), Some(JitMode::Off));
    assert_eq!(JitMode::parse("warp-speed"), None);
    assert_eq!(JitMode::On.to_string(), "on");
}
