//! A persistent worker pool with individually awaitable job handles and
//! a bounded queue.
//!
//! [`run_jobs`](crate::run_jobs) is the sweep engine: it takes a whole
//! job list up front, fans it out on scoped threads and joins. A
//! long-lived server has the opposite shape — jobs arrive one at a time,
//! each caller wants to await *its* result, and when the backlog grows
//! the right answer is an explicit "busy" to the caller rather than an
//! unbounded queue. [`WorkerPool`] provides that shape:
//!
//! - **Bounded admission.** [`WorkerPool::submit`] refuses work with
//!   [`SubmitError::Busy`] once `queue_depth` jobs are waiting, so
//!   callers can shed load instead of letting latency grow without
//!   bound.
//! - **Individually awaitable handles.** Each accepted job returns a
//!   [`JobHandle`]; [`JobHandle::wait`] blocks only on that job.
//! - **Panic isolation.** Jobs run under `catch_unwind`; a panicking job
//!   resolves its own handle to [`JobPanic`] and the worker lives on.
//! - **Worker supervision.** A worker thread that dies anyway (the
//!   [`KillWorker`](crate::KillWorker) sentinel, or a panic in the
//!   pool's own bookkeeping) is detected by a drop guard on the dying
//!   thread, which repairs the in-flight accounting and spawns a
//!   replacement. Restarts are rate-limited by a
//!   [`RestartTracker`](powerchop_resilience::RestartTracker): past the
//!   storm threshold the pool latches [`WorkerPool::gave_up`] and sheds
//!   new submissions with [`SubmitError::Unavailable`] — but keeps
//!   respawning, so handles for already-queued jobs still resolve.
//! - **Graceful drain.** Dropping (or [`WorkerPool::close`]-ing) the
//!   pool stops admission, runs everything already queued, and joins
//!   the workers; [`WorkerPool::drain`] waits for idleness without
//!   tearing the pool down.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use powerchop_resilience::{RestartPolicy, RestartTracker};

use crate::JobPanic;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::submit`] refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full. This is deliberate backpressure: the
    /// caller should shed the request (HTTP 429 style) or retry later.
    Busy {
        /// The queue capacity that was exhausted.
        queue_depth: usize,
    },
    /// The pool is draining and accepts no new work.
    Closed,
    /// Workers are crash-looping past the restart-storm threshold; the
    /// pool sheds new work (HTTP 503 style) instead of feeding the loop.
    Unavailable,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { queue_depth } => {
                write!(f, "job queue is full ({queue_depth} waiting)")
            }
            SubmitError::Closed => f.write_str("pool is draining and accepts no new jobs"),
            SubmitError::Unavailable => {
                f.write_str("workers are restarting faster than the storm threshold allows")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Locks a mutex, recovering the guard from a poisoned lock (jobs catch
/// their own panics, so poison here only means a panic mid-bookkeeping;
/// the protected state is still a plain queue and counters).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait_on<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

struct PoolState {
    queue: VecDeque<Job>,
    open: bool,
    /// Jobs currently executing on a worker.
    active: usize,
    /// Submission sequence number, used as the [`JobPanic`] index.
    submitted: u64,
    /// Worker threads currently running their loop.
    live_workers: usize,
    /// Worker threads respawned after a death (lifetime count).
    respawns: u64,
    /// Latched once the restart tracker declares a storm.
    gave_up: bool,
    /// Join handles for respawned workers, joined at shutdown.
    replacements: Vec<std::thread::JoinHandle<()>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or the pool closes.
    work_ready: Condvar,
    /// Signalled when a worker finishes a job (for [`WorkerPool::drain`]).
    job_done: Condvar,
    /// Zero point of the supervision clock (restart-window accounting).
    epoch: Instant,
    /// Restart-rate accounting for the supervisor.
    restarts: Mutex<RestartTracker>,
}

/// A fixed set of worker threads consuming a bounded job queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    queue_depth: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue_depth)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue holding at most
    /// `queue_depth` waiting jobs, supervised under the default
    /// [`RestartPolicy`]. Both sizes are clamped to at least 1 — a
    /// zero-worker pool would deadlock every submission and a
    /// zero-depth queue could accept nothing.
    #[must_use]
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        WorkerPool::with_restart_policy(workers, queue_depth, RestartPolicy::default())
    }

    /// [`WorkerPool::new`] with an explicit restart-rate policy for the
    /// worker supervisor.
    #[must_use]
    pub fn with_restart_policy(workers: usize, queue_depth: usize, policy: RestartPolicy) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                open: true,
                active: 0,
                submitted: 0,
                live_workers: workers,
                respawns: 0,
                gave_up: false,
                replacements: Vec::new(),
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            epoch: Instant::now(),
            restarts: Mutex::new(RestartTracker::new(policy)),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
            queue_depth: queue_depth.max(1),
        }
    }

    /// Submits one job and returns a handle to await its result.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the queue already holds `queue_depth`
    /// waiting jobs, [`SubmitError::Closed`] when the pool is draining.
    pub fn submit<T, F>(&self, job: F) -> Result<JobHandle<T>, SubmitError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let mut st = lock(&self.shared.state);
        if !st.open {
            return Err(SubmitError::Closed);
        }
        if st.gave_up {
            return Err(SubmitError::Unavailable);
        }
        if st.queue.len() >= self.queue_depth {
            return Err(SubmitError::Busy {
                queue_depth: self.queue_depth,
            });
        }
        let index = usize::try_from(st.submitted).unwrap_or(usize::MAX);
        st.submitted += 1;
        let slot = Arc::new(Slot {
            cell: Mutex::new(None),
            done: Condvar::new(),
            queue_wait_ns: AtomicU64::new(0),
        });
        let out = Arc::clone(&slot);
        let enqueued = Instant::now();
        st.queue.push_back(Box::new(move || {
            // Stamp the queue wait the instant a worker picks the job
            // up, so callers can attribute latency to queueing vs
            // compute (the serve layer's span ledger reads this).
            let waited = u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
            out.queue_wait_ns.store(waited, Ordering::Relaxed);
            match catch_unwind(AssertUnwindSafe(job)) {
                Ok(value) => {
                    *lock(&out.cell) = Some(Ok(value));
                    out.done.notify_all();
                }
                Err(payload) => {
                    // Resolve the handle first so the affected caller
                    // gets its typed error no matter what happens to
                    // the worker thread next.
                    *lock(&out.cell) = Some(Err(JobPanic {
                        index,
                        message: crate::panic_message(payload.as_ref()),
                    }));
                    out.done.notify_all();
                    if payload.is::<crate::KillWorker>() {
                        // The sentinel asks for the worker itself to
                        // die; the supervisor guard in `worker_loop`
                        // repairs the accounting and respawns.
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }));
        drop(st);
        self.shared.work_ready.notify_one();
        Ok(JobHandle { slot })
    }

    /// Jobs waiting in the queue (not yet running).
    #[must_use]
    pub fn queued(&self) -> usize {
        lock(&self.shared.state).queue.len()
    }

    /// Jobs currently executing on a worker.
    #[must_use]
    pub fn inflight(&self) -> usize {
        lock(&self.shared.state).active
    }

    /// The number of worker threads the pool was sized for.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker threads currently running their loop. Transiently below
    /// [`WorkerPool::workers`] between a worker death and its respawn.
    #[must_use]
    pub fn alive(&self) -> usize {
        lock(&self.shared.state).live_workers
    }

    /// Worker threads respawned after a death, over the pool's lifetime.
    #[must_use]
    pub fn respawns(&self) -> u64 {
        lock(&self.shared.state).respawns
    }

    /// Whether the supervisor has latched the restart-storm verdict and
    /// new submissions are being shed with [`SubmitError::Unavailable`].
    #[must_use]
    pub fn gave_up(&self) -> bool {
        lock(&self.shared.state).gave_up
    }

    /// The queue capacity submissions are bounded by.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Blocks until the pool is idle: no queued and no executing jobs.
    /// New submissions remain possible; callers that want a terminal
    /// drain should stop submitting first (or use [`WorkerPool::close`]).
    pub fn drain(&self) {
        let mut st = lock(&self.shared.state);
        while !st.queue.is_empty() || st.active > 0 {
            st = wait_on(&self.shared.job_done, st);
        }
    }

    /// Stops admission, runs every queued job to completion and joins
    /// the workers. Dropping the pool does the same.
    pub fn close(self) {
        // Drop runs the shutdown.
    }

    fn shutdown(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.open = false;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Respawned workers register their handles in shared state; a
        // replacement can itself die and spawn another while we join,
        // so pop until the list is observed empty.
        loop {
            let handle = lock(&self.shared.state).replacements.pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Arc<PoolShared>) {
    let mut sentinel = Sentinel {
        shared: Arc::clone(shared),
        armed: true,
    };
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.active += 1;
                    break job;
                }
                if !st.open {
                    st.live_workers = st.live_workers.saturating_sub(1);
                    sentinel.armed = false;
                    return;
                }
                st = wait_on(&shared.work_ready, st);
            }
        };
        job();
        lock(&shared.state).active -= 1;
        shared.job_done.notify_all();
    }
}

/// A supervisor guard living on each worker thread. On a clean exit the
/// loop disarms it; if the worker dies any other way (the only panic
/// path is `resume_unwind` of a [`crate::KillWorker`] payload, but the
/// guard also covers a hypothetical panic in pool bookkeeping) its
/// `Drop` runs *on the dying thread* during unwind: it repairs the
/// `active` count the aborted job left behind, records the restart, and
/// spawns a replacement so pool capacity recovers.
struct Sentinel {
    shared: Arc<PoolShared>,
    armed: bool,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let now_ms = u64::try_from(self.shared.epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
        // Past the storm threshold the pool sheds *new* work, but keeps
        // respawning: handles for jobs already queued must still
        // resolve, and a worker has to exist to run them.
        let stormy = {
            let mut tracker = lock(&self.shared.restarts);
            tracker.record(now_ms) == powerchop_resilience::RestartVerdict::Storm
        };
        let mut st = lock(&self.shared.state);
        // The worker only unwinds from inside `job()`, after `active`
        // was incremented and before it was decremented.
        st.active = st.active.saturating_sub(1);
        st.live_workers = st.live_workers.saturating_sub(1);
        st.gave_up = st.gave_up || stormy;
        if st.open || !st.queue.is_empty() {
            let shared = Arc::clone(&self.shared);
            match std::thread::Builder::new()
                .name(String::from("powerchop-worker"))
                .spawn(move || worker_loop(&shared))
            {
                Ok(handle) => {
                    st.respawns += 1;
                    st.live_workers += 1;
                    st.replacements.push(handle);
                }
                Err(err) => {
                    // Out of threads: latch the storm verdict so the
                    // serve layer sheds load instead of queueing into a
                    // pool that may have no workers left.
                    st.gave_up = true;
                    eprintln!("powerchop-exec: failed to respawn worker: {err}");
                }
            }
        }
        drop(st);
        self.shared.job_done.notify_all();
        self.shared.work_ready.notify_all();
    }
}

struct Slot<T> {
    cell: Mutex<Option<Result<T, JobPanic>>>,
    done: Condvar,
    /// Nanoseconds the job spent queued before a worker picked it up;
    /// zero until pickup.
    queue_wait_ns: AtomicU64,
}

/// An awaitable handle to one submitted job. The handle outlives the
/// pool: a job that was queued when the pool started draining still
/// runs, and its handle still resolves.
pub struct JobHandle<T> {
    slot: Arc<Slot<T>>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("done", &self.is_done())
            .finish_non_exhaustive()
    }
}

impl<T> JobHandle<T> {
    /// Blocks until the job finishes; returns its result, or the panic
    /// it raised (with the submission sequence number as the index).
    pub fn wait(self) -> Result<T, JobPanic> {
        let mut cell = lock(&self.slot.cell);
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = wait_on(&self.slot.done, cell);
        }
    }

    /// Whether the job has finished (non-blocking).
    #[must_use]
    pub fn is_done(&self) -> bool {
        lock(&self.slot.cell).is_some()
    }

    /// Nanoseconds this job spent waiting in the queue before a worker
    /// picked it up. Zero until pickup; stable once the job is running,
    /// so reading it after [`JobHandle::is_done`] (or before
    /// [`JobHandle::wait`] on a done handle) gives the final value.
    #[must_use]
    pub fn queue_wait_ns(&self) -> u64 {
        self.slot.queue_wait_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn submit_and_wait_returns_the_result() {
        let pool = WorkerPool::new(2, 8);
        let h = pool.submit(|| 6 * 7).unwrap();
        assert_eq!(h.wait().unwrap(), 42);
    }

    #[test]
    fn handles_resolve_independently_and_out_of_order() {
        let pool = WorkerPool::new(4, 16);
        let handles: Vec<_> = (0..12)
            .map(|i| pool.submit(move || i * i).unwrap())
            .collect();
        // Await in reverse submission order: each handle blocks only on
        // its own job.
        for (i, h) in handles.into_iter().enumerate().rev() {
            assert_eq!(h.wait().unwrap(), i * i);
        }
    }

    #[test]
    fn a_full_queue_is_busy_not_blocking() {
        let pool = WorkerPool::new(1, 1);
        let (release, gate) = mpsc::channel::<()>();
        // Occupy the single worker...
        let running = pool.submit(move || gate.recv().is_ok()).unwrap();
        // ...then fill the single queue slot. The worker may not have
        // dequeued the first job yet, so allow one retry.
        let queued = loop {
            match pool.submit(|| true) {
                Ok(h) => break h,
                Err(SubmitError::Busy { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected {e}"),
            }
        };
        // Wait until the worker has actually picked up the first job so
        // the queue slot count is deterministic.
        while pool.inflight() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(
            pool.submit(|| true).unwrap_err(),
            SubmitError::Busy { queue_depth: 1 }
        );
        release.send(()).unwrap();
        assert!(running.wait().unwrap());
        assert!(queued.wait().unwrap());
    }

    #[test]
    fn panics_resolve_the_handle_and_spare_the_worker() {
        let pool = WorkerPool::new(1, 4);
        let boom = pool
            .submit(|| -> u32 { panic!("pool job blows up") })
            .unwrap();
        let err = boom.wait().unwrap_err();
        assert_eq!(err.index, 0);
        assert!(err.message.contains("pool job blows up"), "{}", err.message);
        // The same (only) worker still serves later jobs.
        assert_eq!(pool.submit(|| 5).unwrap().wait().unwrap(), 5);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let (tx, rx) = mpsc::channel::<u32>();
        {
            let pool = WorkerPool::new(1, 16);
            for i in 0..10 {
                let tx = tx.clone();
                pool.submit(move || tx.send(i).unwrap()).unwrap();
            }
            // Dropping here must run all ten queued jobs first.
        }
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn drain_waits_for_idleness_and_close_rejects_new_work() {
        let pool = WorkerPool::new(2, 8);
        let handles: Vec<_> = (0..6).map(|i| pool.submit(move || i).unwrap()).collect();
        pool.drain();
        assert_eq!(pool.queued(), 0);
        assert_eq!(pool.inflight(), 0);
        for (i, h) in handles.into_iter().enumerate() {
            assert!(h.is_done());
            assert_eq!(h.wait().unwrap(), i);
        }
    }

    #[test]
    fn kill_worker_respawns_and_service_continues() {
        let pool = WorkerPool::new(1, 4);
        let dead = pool
            .submit(|| -> u32 { std::panic::panic_any(crate::KillWorker) })
            .unwrap();
        // The affected request still gets its typed error...
        let err = dead.wait().unwrap_err();
        assert!(err.message.contains("killed"), "{}", err.message);
        // ...and the pool's only worker died with it, so this next job
        // can only complete if the supervisor respawned one.
        assert_eq!(pool.submit(|| 7).unwrap().wait().unwrap(), 7);
        assert_eq!(pool.respawns(), 1);
        assert_eq!(pool.alive(), 1);
        assert!(!pool.gave_up());
    }

    #[test]
    fn restart_storm_latches_and_sheds_new_work() {
        let pool = WorkerPool::with_restart_policy(1, 8, RestartPolicy::new(60_000, 2));
        // Two restarts fit the policy; the third latches the storm.
        for _ in 0..3 {
            let h = pool
                .submit(|| std::panic::panic_any(crate::KillWorker))
                .unwrap();
            let _ = h.wait();
        }
        while !pool.gave_up() {
            std::thread::yield_now();
        }
        assert_eq!(pool.submit(|| 1).unwrap_err(), SubmitError::Unavailable);
        // Storm mode keeps respawning (queued handles must resolve), it
        // only sheds admissions.
        assert_eq!(pool.respawns(), 3);
        assert_eq!(pool.alive(), 1);
    }

    #[test]
    fn a_killed_worker_does_not_leak_inflight_accounting() {
        let pool = WorkerPool::new(2, 8);
        let h = pool
            .submit(|| std::panic::panic_any(crate::KillWorker))
            .unwrap();
        let _ = h.wait();
        // Without the sentinel repairing `active`, this drain would
        // hang on the phantom in-flight job.
        pool.drain();
        assert_eq!(pool.inflight(), 0);
    }

    #[test]
    fn queue_wait_is_attributed_to_queued_jobs() {
        let pool = WorkerPool::new(1, 4);
        let (release, gate) = mpsc::channel::<()>();
        let running = pool.submit(move || gate.recv().is_ok()).unwrap();
        let queued = pool.submit(|| 7u32).unwrap();
        // The queued job cannot start until the gate opens, so its
        // queue wait is at least this sleep.
        std::thread::sleep(std::time::Duration::from_millis(2));
        release.send(()).unwrap();
        while !queued.is_done() {
            std::thread::yield_now();
        }
        assert!(
            queued.queue_wait_ns() >= 2_000_000,
            "queued job waited {}ns",
            queued.queue_wait_ns()
        );
        assert!(running.wait().unwrap());
        assert_eq!(queued.wait().unwrap(), 7);
    }

    #[test]
    fn zero_sized_pools_are_clamped() {
        let pool = WorkerPool::new(0, 0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.queue_depth(), 1);
        assert_eq!(pool.submit(|| 1).unwrap().wait().unwrap(), 1);
    }
}
