//! A dependency-free work-stealing job pool for embarrassingly parallel
//! sweeps.
//!
//! The paper's evaluation fans out over 29 workloads and dozens of design
//! points; every runner in this repo used to walk them one at a time on
//! one core. This crate parallelizes those sweeps without changing a
//! single output byte:
//!
//! - **Work stealing, not pre-partitioning.** Workers claim chunks of the
//!   job list through one shared atomic cursor, so a worker that lands a
//!   short benchmark immediately steals the next chunk instead of idling
//!   behind a long one. Chunks keep cursor traffic negligible while the
//!   tail of the sweep still load-balances chunk-by-chunk.
//! - **Deterministic merge.** Results are keyed by job index and returned
//!   in submission order. Callers fold reports, CSV rows and journal
//!   lines *after* the pool joins, so the merged output is bit-identical
//!   to a sequential run at any thread count.
//! - **Panic isolation.** Each job runs under `catch_unwind`; one
//!   panicking benchmark surfaces as a [`JobPanic`] in its slot while
//!   every other job completes normally.
//!
//! The pool is built on `std::thread::scope` — no channels, no queues, no
//! external crates — because sweep jobs are coarse (whole simulations):
//! the scheduling cost that matters is tail imbalance, not per-job
//! dispatch latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

pub use pool::{JobHandle, SubmitError, WorkerPool};

/// A panic payload that deliberately kills the worker thread running
/// the job.
///
/// Ordinary job panics are contained: the job's handle resolves to a
/// [`JobPanic`] and the worker survives to serve the next job.
/// Panicking with this sentinel (`std::panic::panic_any(KillWorker)`)
/// still resolves the handle first — the affected caller gets its typed
/// error — but then re-raises through the worker loop so the thread
/// actually dies. It exists so tests and the serve-layer chaos ops can
/// exercise the pool's supervision/respawn path deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillWorker;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A job that panicked instead of returning a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job in the submitted list.
    pub index: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if payload.is::<KillWorker>() {
        String::from("worker killed by injected fault")
    } else {
        String::from("non-string panic payload")
    }
}

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "POWERCHOP_JOBS";

/// Resolves the worker count: an explicit request (e.g. `--jobs N`) wins,
/// then the `POWERCHOP_JOBS` environment variable, then
/// `std::thread::available_parallelism()`. The result is always >= 1.
#[must_use]
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    resolve_jobs_from(explicit, std::env::var(JOBS_ENV).ok().as_deref())
}

/// The environment-independent core of [`resolve_jobs`]: `env` is the
/// raw `POWERCHOP_JOBS` value, when the variable is set.
///
/// A zero worker count — whether explicit or from the environment —
/// would mean an empty pool, so it clamps to one worker with a warning
/// instead of being an error (or, worse, silently falling back to the
/// CPU count the caller asked to override). A value that does not parse
/// at all is reported on stderr and ignored, mirroring how
/// `POWERCHOP_BUDGET` is handled.
#[must_use]
pub fn resolve_jobs_from(explicit: Option<usize>, env: Option<&str>) -> usize {
    if let Some(n) = explicit {
        if n == 0 {
            eprintln!("warning: a zero worker count would make an empty pool; clamping to 1");
            return 1;
        }
        return n;
    }
    if let Some(raw) = env {
        match raw.trim().parse::<usize>() {
            Ok(0) => {
                eprintln!("warning: {JOBS_ENV}=0 would make an empty pool; clamping to 1 worker");
                return 1;
            }
            Ok(n) => return n,
            Err(_) => {
                eprintln!("warning: ignoring invalid {JOBS_ENV}={raw:?} (want a positive integer)")
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` over every item of `items` on up to `jobs` worker threads and
/// returns one result per item, **in submission order**.
///
/// Scheduling is chunked work stealing: an atomic cursor hands out runs
/// of consecutive indices, sized so each worker claims the queue roughly
/// four times — small enough to balance a ragged tail, large enough that
/// cursor contention is unmeasurable. With `jobs <= 1` (or fewer than two
/// items) everything runs inline on the caller's thread; the returned
/// vector is identical either way.
///
/// A panicking job yields `Err(JobPanic)` in its slot and does not
/// disturb its neighbours.
pub fn run_jobs<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<Result<T, JobPanic>>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    let run_one = |index: usize| -> Result<T, JobPanic> {
        catch_unwind(AssertUnwindSafe(|| f(index, &items[index]))).map_err(|payload| JobPanic {
            index,
            message: panic_message(payload.as_ref()),
        })
    };

    if workers <= 1 {
        return (0..n).map(run_one).collect();
    }

    // Chunk size: each worker steals ~4 chunks over the sweep.
    let chunk = (n / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<T, JobPanic>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let run_one = &run_one;
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, Result<T, JobPanic>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for index in start..(start + chunk).min(n) {
                        done.push((index, run_one(index)));
                    }
                }
                done
            }));
        }
        for handle in handles {
            // Workers catch job panics themselves, so a join error would
            // mean the *pool* is broken; its jobs are reported as
            // panicked rather than silently dropped.
            if let Ok(done) = handle.join() {
                for (index, result) in done {
                    slots[index] = Some(result);
                }
            }
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.unwrap_or(Err(JobPanic {
                index,
                message: String::from("worker thread died before reporting a result"),
            }))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_submission_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|v| v * 3).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let out = run_jobs(&items, jobs, |_, v| v * 3);
            let got: Vec<u64> = out.into_iter().map(|r| r.expect("no panics")).collect();
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        run_jobs(&counters, 8, |_, c| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let items: Vec<usize> = (0..20).collect();
        let out = run_jobs(&items, 4, |_, v| {
            assert!(v % 7 != 3, "boom at {v}");
            *v
        });
        for (i, r) in out.iter().enumerate() {
            if i % 7 == 3 {
                let err = r.as_ref().expect_err("should have panicked");
                assert_eq!(err.index, i);
                assert!(err.message.contains("boom"), "message: {}", err.message);
            } else {
                assert_eq!(*r.as_ref().expect("should have succeeded"), i);
            }
        }
    }

    #[test]
    fn string_panic_payloads_are_captured() {
        let items = [0usize];
        let out = run_jobs(&items, 1, |_, _| -> usize {
            // A `String` payload, unlike the `&str` from a literal panic.
            std::panic::panic_any(format!("dynamic {}", 42));
        });
        assert_eq!(out[0].as_ref().expect_err("panicked").message, "dynamic 42");
    }

    #[test]
    fn empty_job_list_returns_empty() {
        let items: Vec<u32> = Vec::new();
        let out = run_jobs(&items, 8, |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_jobs_clamps_to_sequential() {
        let items = [1u32, 2, 3];
        let out = run_jobs(&items, 0, |i, v| (i, *v));
        let got: Vec<(usize, u32)> = out.into_iter().map(|r| r.expect("no panics")).collect();
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn resolve_jobs_prefers_explicit_then_env() {
        assert_eq!(resolve_jobs(Some(6)), 6);
        assert_eq!(resolve_jobs(Some(0)), 1, "explicit zero clamps to one");
        // Env handling is covered through `resolve_jobs_from` rather than
        // by mutating process-global env (tests run concurrently).
        assert!(resolve_jobs(None) >= 1);
        assert_eq!(resolve_jobs_from(None, Some("3")), 3);
        assert_eq!(resolve_jobs_from(Some(2), Some("7")), 2, "explicit wins");
    }

    #[test]
    fn env_zero_and_garbage_clamp_or_fall_back() {
        assert_eq!(
            resolve_jobs_from(None, Some("0")),
            1,
            "POWERCHOP_JOBS=0 must clamp to one worker, not fall back to the CPU count"
        );
        assert_eq!(resolve_jobs_from(None, Some(" 0 ")), 1);
        assert_eq!(
            resolve_jobs_from(Some(0), Some("8")),
            1,
            "explicit zero still clamps"
        );
        for garbage in ["abc", "-3", "1.5", ""] {
            let n = resolve_jobs_from(None, Some(garbage));
            assert!(
                n >= 1,
                "garbage {garbage:?} must fall back to a usable count"
            );
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [10u32, 20];
        let out = run_jobs(&items, 16, |_, v| v + 1);
        let got: Vec<u32> = out.into_iter().map(|r| r.expect("no panics")).collect();
        assert_eq!(got, vec![11, 21]);
    }
}
