//! A versioned, checksummed, self-describing binary snapshot format.
//!
//! Every state-bearing crate in the workspace serializes its private
//! state through this crate so a running simulation can be frozen to
//! disk and resumed bit-identically. The container is deliberately
//! simple and dependency-free:
//!
//! ```text
//! magic          8 bytes   b"PWCHKPT1"
//! format version u32 LE    [`FORMAT_VERSION`]
//! config hash    u64 LE    FNV-1a over the canonical run-config encoding
//! section count  u32 LE
//! per section:
//!   tag          u32 LE    owner-defined section identifier
//!   length       u64 LE    payload bytes
//!   crc32        u32 LE    CRC-32 (IEEE) of the payload
//!   payload      LE-encoded fields written with [`ByteWriter`]
//! file crc32     u32 LE    CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! The trailing whole-file CRC catches damage the per-section CRCs
//! cannot see (the header and the section table itself); the per-section
//! CRCs remain for defence in depth and section-level diagnostics.
//!
//! Everything is little-endian; floats travel as their IEEE-754 bit
//! patterns so restored values are bit-identical. Corrupt, truncated,
//! version-skewed or config-mismatched snapshots surface as typed
//! [`CheckpointError`]s — decoding never panics, whatever the bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"PWCHKPT1";

/// Current snapshot format version. Bump on any incompatible layout
/// change; readers reject other versions with
/// [`CheckpointError::VersionSkew`].
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The byte stream ended before a declared field or section.
    Truncated,
    /// The magic prefix is wrong: not a snapshot at all.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    VersionSkew {
        /// Version found in the snapshot header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The whole-file CRC trailer failed: the container is damaged
    /// somewhere outside a section payload (header or section table),
    /// or the trailer itself was hit.
    CorruptContainer,
    /// A section's payload failed its CRC check.
    CorruptSection {
        /// Tag of the failing section.
        tag: u32,
    },
    /// A section the restore path requires is absent.
    MissingSection {
        /// Tag of the absent section.
        tag: u32,
    },
    /// A payload decoded but its contents are semantically invalid
    /// (bad discriminant, impossible length, trailing bytes, ...).
    Malformed {
        /// What was being decoded when the check failed.
        what: &'static str,
    },
    /// The snapshot was taken under a different run configuration.
    ConfigMismatch {
        /// Config hash found in the snapshot header.
        found: u64,
        /// Config hash of the configuration attempting the restore.
        expected: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "snapshot truncated"),
            CheckpointError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            CheckpointError::VersionSkew { found, expected } => {
                write!(f, "snapshot format v{found}, this build reads v{expected}")
            }
            CheckpointError::CorruptContainer => {
                write!(f, "snapshot container failed its whole-file CRC check")
            }
            CheckpointError::CorruptSection { tag } => {
                write!(f, "section {tag:#x} failed its CRC check")
            }
            CheckpointError::MissingSection { tag } => {
                write!(f, "required section {tag:#x} is missing")
            }
            CheckpointError::Malformed { what } => {
                write!(f, "malformed snapshot field: {what}")
            }
            CheckpointError::ConfigMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot config hash {found:#018x} does not match run config {expected:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Byte-at-a-time CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_begin(), bytes))
}

/// Starts a streaming CRC-32 computation (the pre-inversion seed).
/// Feed chunks through [`crc32_update`] and close with [`crc32_finish`];
/// the result equals [`crc32`] over the concatenated chunks, with no
/// intermediate buffer. The write-ahead journal uses this to checksum a
/// frame header and payload without gluing them together first.
#[must_use]
pub fn crc32_begin() -> u32 {
    !0u32
}

/// Folds `bytes` into a streaming CRC-32 state from [`crc32_begin`].
#[must_use]
pub fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

/// Closes a streaming CRC-32 state into the final checksum.
#[must_use]
pub fn crc32_finish(crc: u32) -> u32 {
    !crc
}

/// FNV-1a 64-bit hash, used for config and program fingerprints.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Combines the two fingerprints that fully identify a simulation's
/// input — the guest program's and the run configuration's — into one
/// 128-bit key (program in the high half). Snapshots bind to the config
/// fingerprint alone (the program can be re-derived from the embedded
/// metadata); result caches key on both, because two different programs
/// can legitimately share a configuration.
#[must_use]
pub fn run_key(program_fingerprint: u64, config_fingerprint: u64) -> u128 {
    (u128::from(program_fingerprint) << 64) | u128::from(config_fingerprint)
}

/// Little-endian field writer backing every section payload.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u64` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_raw(bytes);
    }

    /// Writes a UTF-8 string (length-prefixed).
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Little-endian field reader over a section payload.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CheckpointError::Truncated)?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        self.take(n)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an `i64`.
    pub fn take_i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(self.take_u64()? as i64)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is malformed.
    pub fn take_bool(&mut self) -> Result<bool, CheckpointError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed { what: "bool" }),
        }
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn take_usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.take_u64()?).map_err(|_| CheckpointError::Malformed { what: "usize" })
    }

    /// Reads a length-prefixed byte slice.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let len = self.take_usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, CheckpointError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::Malformed { what: "utf-8" })
    }

    /// Asserts that the payload has been fully consumed; trailing bytes
    /// mean writer and reader disagree about the layout.
    pub fn expect_end(&self, what: &'static str) -> Result<(), CheckpointError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::Malformed { what })
        }
    }
}

/// Builds one snapshot: header plus CRC-protected sections.
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    config_hash: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot bound to `config_hash` (the canonical hash of
    /// the run configuration; restore rejects any other).
    #[must_use]
    pub fn new(config_hash: u64) -> Self {
        SnapshotWriter {
            config_hash,
            sections: Vec::new(),
        }
    }

    /// Appends a section, letting `fill` encode the payload.
    pub fn section(&mut self, tag: u32, fill: impl FnOnce(&mut ByteWriter)) {
        let mut w = ByteWriter::new();
        fill(&mut w);
        self.sections.push((tag, w.into_bytes()));
    }

    /// Serializes the snapshot container.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        let file_crc = crc32(&out);
        out.extend_from_slice(&file_crc.to_le_bytes());
        out
    }
}

/// A parsed, CRC-verified snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot<'a> {
    config_hash: u64,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> Snapshot<'a> {
    /// Parses and validates a snapshot: magic, version, section table
    /// and every section CRC. Any defect is a typed error, never a
    /// panic.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.take_u32()?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::VersionSkew {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        // The last 4 bytes are a CRC over everything before them; verify
        // it up front so damage anywhere in the container — including the
        // section table, which per-section CRCs cannot see — is caught.
        if bytes.len() < 16 {
            return Err(CheckpointError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        if crc32(body) != expected {
            return Err(CheckpointError::CorruptContainer);
        }
        let mut r = ByteReader::new(body);
        r.take(12)?; // magic + version, validated above
        let config_hash = r.take_u64()?;
        let count = r.take_u32()?;
        let mut sections = Vec::new();
        for _ in 0..count {
            let tag = r.take_u32()?;
            let len = r.take_usize()?;
            let crc = r.take_u32()?;
            let payload = r.take(len)?;
            if crc32(payload) != crc {
                return Err(CheckpointError::CorruptSection { tag });
            }
            sections.push((tag, payload));
        }
        if !r.is_empty() {
            return Err(CheckpointError::Malformed {
                what: "trailing bytes after last section",
            });
        }
        Ok(Snapshot {
            config_hash,
            sections,
        })
    }

    /// The config hash recorded when the snapshot was taken.
    #[must_use]
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Rejects the snapshot unless it was taken under `expected`.
    pub fn require_config(&self, expected: u64) -> Result<(), CheckpointError> {
        if self.config_hash == expected {
            Ok(())
        } else {
            Err(CheckpointError::ConfigMismatch {
                found: self.config_hash,
                expected,
            })
        }
    }

    /// A reader over the payload of section `tag`.
    pub fn section(&self, tag: u32) -> Result<ByteReader<'a>, CheckpointError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| ByteReader::new(payload))
            .ok_or(CheckpointError::MissingSection { tag })
    }

    /// Whether section `tag` is present.
    #[must_use]
    pub fn has_section(&self, tag: u32) -> bool {
        self.sections.iter().any(|(t, _)| *t == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn streaming_crc32_equals_one_shot_at_every_split() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32(data);
        for split in 0..=data.len() {
            let mut crc = crc32_begin();
            crc = crc32_update(crc, &data[..split]);
            crc = crc32_update(crc, &data[split..]);
            assert_eq!(crc32_finish(crc), whole, "split at {split}");
        }
    }

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn run_keys_separate_program_and_config_halves() {
        assert_eq!(run_key(1, 2), (1u128 << 64) | 2);
        assert_ne!(run_key(1, 2), run_key(2, 1), "the halves are ordered");
        assert_ne!(run_key(7, 0), run_key(0, 7));
        assert_eq!(run_key(u64::MAX, u64::MAX), u128::MAX);
    }

    #[test]
    fn fields_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.125f64).to_bits());
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_str().unwrap(), "hello");
        assert_eq!(r.take_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.expect_end("test").is_ok());
    }

    #[test]
    fn reading_past_the_end_is_truncated() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.take_u64().unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn snapshot_round_trips_sections() {
        let mut w = SnapshotWriter::new(0x1234);
        w.section(1, |w| w.put_u64(99));
        w.section(2, |w| w.put_str("two"));
        let bytes = w.finish();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert_eq!(snap.config_hash(), 0x1234);
        assert!(snap.require_config(0x1234).is_ok());
        assert_eq!(
            snap.require_config(0x9999).unwrap_err(),
            CheckpointError::ConfigMismatch {
                found: 0x1234,
                expected: 0x9999
            }
        );
        assert_eq!(snap.section(1).unwrap().take_u64().unwrap(), 99);
        assert_eq!(snap.section(2).unwrap().take_str().unwrap(), "two");
        assert_eq!(
            snap.section(3).unwrap_err(),
            CheckpointError::MissingSection { tag: 3 }
        );
    }

    #[test]
    fn every_single_byte_flip_is_a_typed_error() {
        let mut w = SnapshotWriter::new(42);
        w.section(1, |w| {
            w.put_u64(7);
            w.put_str("payload");
        });
        w.section(9, |w| w.put_bool(false));
        let good = w.finish();
        assert!(Snapshot::parse(&good).is_ok());
        for i in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[i] ^= 1 << bit;
                // The whole-file CRC trailer guarantees any single-bit
                // flip fails parse outright with a typed error.
                assert!(
                    Snapshot::parse(&bad).is_err(),
                    "flip at byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncations_never_panic() {
        let mut w = SnapshotWriter::new(0);
        w.section(5, |w| w.put_u64(123));
        let good = w.finish();
        for len in 0..good.len() {
            assert!(Snapshot::parse(&good[..len]).is_err());
        }
    }
}
