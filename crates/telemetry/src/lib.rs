//! Flight-recorder telemetry for the PowerChop reproduction.
//!
//! The simulation's mechanism is *time-resolved* — phase transitions,
//! CDE profiling verdicts, gating switches and their wake latencies —
//! but a [`RunReport`](../powerchop) only shows end-of-run aggregates.
//! This crate adds the missing introspection layer:
//!
//! - a typed, cycle-stamped [`Event`] stream captured in a fixed-capacity
//!   [`EventRing`] (flight-recorder semantics: the newest history wins,
//!   with an exact dropped-event counter),
//! - a [`MetricsRegistry`] of named counters, gauges and log-bucketed
//!   [`Histogram`]s, sampled from the stats structs of every
//!   state-bearing crate at a configurable cycle interval,
//! - exporters: Chrome trace-event JSON ([`export::chrome_trace_json`]),
//!   JSONL ([`export::jsonl`]) and Prometheus text exposition
//!   ([`MetricsRegistry::to_prometheus_text`]),
//! - a terminal timeline renderer ([`timeline::render`]).
//!
//! **Zero-cost when disabled.** The only handle the simulation holds is
//! a [`Tracer`], which is an `Option<Box<FlightRecorder>>`; every emit
//! path starts with an inlined `None` check, and event payloads are
//! plain integers, so a disabled tracer costs one predictable branch
//! and no formatting or allocation ever happens on the hot path.
//!
//! **Determinism.** Events carry core cycle stamps only — wall-clock
//! time never enters the stream — and telemetry mutates no simulation
//! state, so a traced run's `RunReport` is bit-identical to an
//! untraced one and checkpoint/resume of a traced run still
//! round-trips (telemetry buffers are deliberately not checkpointed; a
//! resumed trace simply starts at the resume point).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod ring;
pub mod span;
pub mod timeline;

use std::collections::HashMap;

pub use event::{Event, Stamped, Unit};
pub use export::{validate_json, JsonError};
pub use metrics::{Histogram, MetricSource, MetricsRegistry};
pub use ring::EventRing;
pub use span::{format_trace_id, trace_id, Phase, SpanLedger, SpanRecorder, PHASE_COUNT};

/// Flight-recorder sizing and sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Ring-buffer capacity in events.
    pub ring_capacity: usize,
    /// Cycle interval between registry samples (0 disables sampling).
    pub sample_every_cycles: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 1 << 16,
            sample_every_cycles: 100_000,
        }
    }
}

/// The live flight recorder: ring buffer + metrics registry + the
/// cross-event state needed to derive span metrics (phase residency,
/// gating dwell, profile-to-decision latency) without touching any
/// simulation state.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: EventRing,
    metrics: MetricsRegistry,
    sample_every: u64,
    next_sample: u64,
    current_phase: Option<u64>,
    phase_windows: u64,
    phase_since: u64,
    /// Cycle of each unit's last gating transition (dwell accounting).
    gate_since: [u64; 3],
    /// Whether each unit is currently gated (off / way-gated).
    gate_off: [bool; 3],
    /// Cycle each in-flight profiling measurement was armed at, by
    /// signature key. Only keyed lookups — iteration order never
    /// matters, so the map cannot leak nondeterminism.
    profile_start: HashMap<u64, u64>,
}

impl FlightRecorder {
    /// Creates a recorder per `cfg`.
    #[must_use]
    pub fn new(cfg: TelemetryConfig) -> Self {
        FlightRecorder {
            ring: EventRing::new(cfg.ring_capacity),
            metrics: MetricsRegistry::new(),
            sample_every: cfg.sample_every_cycles,
            next_sample: cfg.sample_every_cycles,
            current_phase: None,
            phase_windows: 0,
            phase_since: 0,
            gate_since: [0; 3],
            gate_off: [false; 3],
            profile_start: HashMap::new(),
        }
    }

    /// Stamps and records an event, bumping its category counter.
    pub fn push(&mut self, cycle: u64, event: Event) {
        self.metrics.counter_add(category_counter(&event), 1);
        self.ring.push(cycle, event);
    }

    /// The event ring.
    #[must_use]
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Retained events, oldest-first.
    #[must_use]
    pub fn events(&self) -> Vec<Stamped> {
        self.ring.to_vec()
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the registry (for sampling).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Whether a registry sample is due at `cycle`; advances the
    /// sampling clock when it is.
    pub fn sample_due(&mut self, cycle: u64) -> bool {
        if self.sample_every == 0 || cycle < self.next_sample {
            return false;
        }
        // Skip any intervals the run jumped over (a long stall) so the
        // clock stays phase-locked to the configured grid.
        let intervals = (cycle - self.next_sample) / self.sample_every + 1;
        self.next_sample += intervals * self.sample_every;
        true
    }

    /// Feeds one execution window's phase signature key. Emits
    /// `PhaseEnter`/`PhaseExit` pairs on phase change and accumulates
    /// the `phase_residency_windows` histogram.
    pub fn on_phase_window(&mut self, cycle: u64, sig: u64) {
        match self.current_phase {
            Some(cur) if cur == sig => {
                self.phase_windows += 1;
            }
            Some(cur) => {
                let windows = self.phase_windows;
                self.push(cycle, Event::PhaseExit { sig: cur, windows });
                self.metrics.observe("phase_residency_windows", windows);
                self.metrics.observe(
                    "phase_residency_cycles",
                    cycle.saturating_sub(self.phase_since),
                );
                self.push(cycle, Event::PhaseEnter { sig });
                self.current_phase = Some(sig);
                self.phase_windows = 1;
                self.phase_since = cycle;
            }
            None => {
                self.push(cycle, Event::PhaseEnter { sig });
                self.current_phase = Some(sig);
                self.phase_windows = 1;
                self.phase_since = cycle;
            }
        }
    }

    /// Records a gating transition for `unit` (`off = true` means the
    /// unit was gated off / way-gated down), with the stall cycles the
    /// transition charged. Emits the event and the per-unit dwell
    /// histogram for the state being left.
    pub fn on_gate(&mut self, cycle: u64, unit: Unit, off: bool, stall: u64) {
        let i = unit.index();
        if self.gate_off[i] == off {
            return; // not a state change (e.g. MLC moving between gated levels)
        }
        let dwell = cycle.saturating_sub(self.gate_since[i]);
        self.metrics
            .observe(dwell_histogram(unit, self.gate_off[i]), dwell);
        self.gate_since[i] = cycle;
        self.gate_off[i] = off;
        if off {
            self.push(cycle, Event::GateOff { unit, stall });
        } else {
            self.push(
                cycle,
                Event::GateOn {
                    unit,
                    wake_stall: stall,
                },
            );
        }
    }

    /// Records that profiling was armed for phase `sig`.
    pub fn on_profile_start(&mut self, cycle: u64, sig: u64) {
        self.profile_start.entry(sig).or_insert(cycle);
        self.push(cycle, Event::CdeProfileStart { sig });
    }

    /// Records a CDE verdict, completing the profile-to-decision
    /// latency histogram when the profiling start was seen.
    pub fn on_verdict(&mut self, cycle: u64, sig: u64, policy: u8) {
        if let Some(start) = self.profile_start.remove(&sig) {
            self.metrics.observe(
                "cde_profile_to_decision_cycles",
                cycle.saturating_sub(start),
            );
        }
        self.push(cycle, Event::CdeVerdict { sig, policy });
    }

    /// Closes out open spans at end of run: the current phase exits and
    /// ring/drop totals land in the registry.
    pub fn finish(&mut self, cycle: u64) {
        if let Some(cur) = self.current_phase.take() {
            let windows = self.phase_windows;
            self.push(cycle, Event::PhaseExit { sig: cur, windows });
            self.metrics.observe("phase_residency_windows", windows);
            self.metrics.observe(
                "phase_residency_cycles",
                cycle.saturating_sub(self.phase_since),
            );
        }
        self.metrics
            .counter_set("telemetry_events_recorded_total", self.ring.recorded());
        self.metrics
            .counter_set("telemetry_events_dropped_total", self.ring.dropped());
    }
}

/// Per-unit dwell histogram names (`off = true` = the state being left
/// was gated-off).
fn dwell_histogram(unit: Unit, was_off: bool) -> &'static str {
    match (unit, was_off) {
        (Unit::Vpu, false) => "gating_vpu_on_dwell_cycles",
        (Unit::Vpu, true) => "gating_vpu_off_dwell_cycles",
        (Unit::Bpu, false) => "gating_bpu_on_dwell_cycles",
        (Unit::Bpu, true) => "gating_bpu_off_dwell_cycles",
        (Unit::Mlc, false) => "gating_mlc_on_dwell_cycles",
        (Unit::Mlc, true) => "gating_mlc_gated_dwell_cycles",
    }
}

/// The per-category event counter a pushed event bumps.
fn category_counter(ev: &Event) -> &'static str {
    match ev.category() {
        "phase" => "events_phase_total",
        "pvt" => "events_pvt_total",
        "cde" => "events_cde_total",
        "gating" => "events_gating_total",
        "degrade" => "events_degrade_total",
        "faults" => "events_faults_total",
        "checkpoint" => "events_checkpoint_total",
        _ => "events_bt_total",
    }
}

/// The simulation's telemetry handle: a no-op sink when disabled, a
/// boxed [`FlightRecorder`] when enabled.
#[derive(Debug, Default)]
pub struct Tracer {
    rec: Option<Box<FlightRecorder>>,
}

impl Tracer {
    /// The no-op tracer (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { rec: None }
    }

    /// A recording tracer per `cfg`.
    #[must_use]
    pub fn enabled(cfg: TelemetryConfig) -> Self {
        Tracer {
            rec: Some(Box::new(FlightRecorder::new(cfg))),
        }
    }

    /// Whether a recorder is attached.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Emits one event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, cycle: u64, event: Event) {
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.push(cycle, event);
        }
    }

    /// Runs `f` against the recorder when enabled. The closure is never
    /// built into anything on the disabled path, so arbitrary sampling
    /// work can hide behind this without costing a disabled run more
    /// than the branch.
    #[inline]
    pub fn with(&mut self, f: impl FnOnce(&mut FlightRecorder)) {
        if let Some(rec) = self.rec.as_deref_mut() {
            f(rec);
        }
    }

    /// The recorder, when enabled.
    #[must_use]
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.rec.as_deref()
    }

    /// Mutable recorder access, when enabled.
    pub fn recorder_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.rec.as_deref_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(1, Event::PhaseEnter { sig: 1 });
        t.with(|_| panic!("closure must not run when disabled"));
        assert!(t.recorder().is_none());
    }

    #[test]
    fn phase_windows_produce_enter_exit_pairs_and_residency() {
        let mut rec = FlightRecorder::new(TelemetryConfig::default());
        rec.on_phase_window(100, 0xA);
        rec.on_phase_window(200, 0xA);
        rec.on_phase_window(300, 0xB);
        rec.finish(400);
        let events = rec.events();
        let names: Vec<&str> = events.iter().map(|s| s.event.name()).collect();
        assert_eq!(
            names,
            vec!["phase_enter", "phase_exit", "phase_enter", "phase_exit"]
        );
        assert_eq!(
            events[1].event,
            Event::PhaseExit {
                sig: 0xA,
                windows: 2
            }
        );
        let h = rec
            .metrics()
            .histogram("phase_residency_windows")
            .expect("residency histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 3);
    }

    #[test]
    fn gate_transitions_track_dwell_and_dedupe_same_state() {
        let mut rec = FlightRecorder::new(TelemetryConfig::default());
        rec.on_gate(1_000, Unit::Vpu, true, 530);
        // MLC dropping further while already gated: no new edge.
        rec.on_gate(2_000, Unit::Vpu, true, 530);
        rec.on_gate(5_000, Unit::Vpu, false, 530);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        let h = rec
            .metrics()
            .histogram("gating_vpu_off_dwell_cycles")
            .expect("off dwell");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 4_000);
    }

    #[test]
    fn profile_latency_is_keyed_per_signature() {
        let mut rec = FlightRecorder::new(TelemetryConfig::default());
        rec.on_profile_start(1_000, 0xA);
        rec.on_profile_start(1_500, 0xB);
        rec.on_verdict(4_000, 0xA, 0b1111);
        rec.on_verdict(9_500, 0xB, 0);
        let h = rec
            .metrics()
            .histogram("cde_profile_to_decision_cycles")
            .expect("latency histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 3_000 + 8_000);
    }

    #[test]
    fn sampling_clock_fires_on_grid_and_skips_gaps() {
        let mut rec = FlightRecorder::new(TelemetryConfig {
            ring_capacity: 16,
            sample_every_cycles: 100,
        });
        assert!(!rec.sample_due(50));
        assert!(rec.sample_due(100));
        assert!(!rec.sample_due(150));
        // A long stall jumps several intervals: one sample, clock re-locked.
        assert!(rec.sample_due(1_234));
        assert!(!rec.sample_due(1_299));
        assert!(rec.sample_due(1_300));
    }

    #[test]
    fn zero_interval_disables_sampling() {
        let mut rec = FlightRecorder::new(TelemetryConfig {
            ring_capacity: 16,
            sample_every_cycles: 0,
        });
        assert!(!rec.sample_due(u64::MAX));
    }

    #[test]
    fn finish_records_exact_ring_totals() {
        let mut rec = FlightRecorder::new(TelemetryConfig {
            ring_capacity: 4,
            sample_every_cycles: 0,
        });
        for i in 0..10 {
            rec.push(i, Event::PvtHit { sig: i });
        }
        rec.finish(10);
        let m = rec.metrics();
        assert_eq!(m.counter("telemetry_events_recorded_total"), 10);
        assert_eq!(m.counter("telemetry_events_dropped_total"), 6);
        assert_eq!(m.counter("events_pvt_total"), 10);
    }
}
