//! Trace exporters: Chrome trace-event JSON, JSONL dumps, and a
//! dependency-free JSON well-formedness checker used by the round-trip
//! tests and CI validation.
//!
//! All exporters are deterministic: they serialize nothing but the
//! cycle-stamped events handed to them, in order, with stable field
//! ordering — identical runs produce byte-identical files.

use crate::event::{Event, Stamped};

/// Renders events as a Chrome trace-event JSON object
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
/// Perfetto. Cycle counts are used directly as the microsecond `ts`
/// field — "1 µs" in the viewer is one core cycle.
///
/// Phase residency and gated-off intervals become duration (`B`/`E`)
/// events on dedicated tracks; everything else is an instant event.
#[must_use]
pub fn chrome_trace_json(events: &[Stamped]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for s in events {
        let (ph, tid) = match s.event {
            Event::PhaseEnter { .. } => ("B", 1),
            Event::PhaseExit { .. } => ("E", 1),
            // A unit's gated-off interval is a span on its own track.
            Event::GateOff { unit, .. } => ("B", 2 + unit.index() as u32),
            Event::GateOn { unit, .. } => ("E", 2 + unit.index() as u32),
            _ => ("i", 0),
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        out.push_str(span_name(&s.event));
        out.push_str("\",\"cat\":\"");
        out.push_str(s.event.category());
        out.push_str("\",\"ph\":\"");
        out.push_str(ph);
        out.push_str("\",\"ts\":");
        out.push_str(&s.cycle.to_string());
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        if ph == "i" {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":");
        push_args(&mut out, &s.event);
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Renders events as one JSON object per line.
#[must_use]
pub fn jsonl(events: &[Stamped]) -> String {
    let mut out = String::with_capacity(events.len() * 80);
    for s in events {
        out.push_str("{\"cycle\":");
        out.push_str(&s.cycle.to_string());
        out.push_str(",\"cat\":\"");
        out.push_str(s.event.category());
        out.push_str("\",\"name\":\"");
        out.push_str(s.event.name());
        out.push_str("\",\"args\":");
        push_args(&mut out, &s.event);
        out.push_str("}\n");
    }
    out
}

/// The Chrome `name` field: `B`/`E` pairs must share a name, so spans
/// use their track's name rather than the enter/exit event name.
fn span_name(ev: &Event) -> &'static str {
    match ev {
        Event::PhaseEnter { .. } | Event::PhaseExit { .. } => "phase",
        Event::GateOff { unit, .. } | Event::GateOn { unit, .. } => match unit.index() {
            0 => "vpu_off",
            1 => "bpu_off",
            _ => "mlc_gated",
        },
        _ => ev.name(),
    }
}

/// Appends the event's payload as a JSON object. Only integers and
/// fixed labels — nothing here can need escaping.
fn push_args(out: &mut String, ev: &Event) {
    use std::fmt::Write as _;
    match ev {
        Event::PhaseEnter { sig }
        | Event::PvtHit { sig }
        | Event::PvtMiss { sig }
        | Event::PvtEvict { sig }
        | Event::CdeProfileStart { sig }
        | Event::DegradeAnomaly { sig }
        | Event::DegradeFailSafe { sig } => {
            let _ = write!(out, "{{\"sig\":\"{sig:016x}\"}}");
        }
        Event::PhaseExit { sig, windows } => {
            let _ = write!(out, "{{\"sig\":\"{sig:016x}\",\"windows\":{windows}}}");
        }
        Event::CdeVerdict { sig, policy } | Event::DegradeRepin { sig, policy } => {
            let _ = write!(
                out,
                "{{\"sig\":\"{sig:016x}\",\"policy\":{policy},\"vpu_on\":{},\"bpu_on\":{}}}",
                policy & 1,
                (policy >> 1) & 1
            );
        }
        Event::GateOn { unit, wake_stall } => {
            let _ = write!(
                out,
                "{{\"unit\":\"{}\",\"wake_stall\":{wake_stall}}}",
                unit.label()
            );
        }
        Event::GateOff { unit, stall } => {
            let _ = write!(out, "{{\"unit\":\"{}\",\"stall\":{stall}}}", unit.label());
        }
        Event::FaultDelivered { kind } => {
            let _ = write!(out, "{{\"kind\":\"{}\"}}", Event::fault_kind_label(*kind));
        }
        Event::CheckpointWritten { retired } => {
            let _ = write!(out, "{{\"retired\":{retired}}}");
        }
        Event::TranslationInstalled { id, guest_len } => {
            let _ = write!(out, "{{\"id\":{id},\"guest_len\":{guest_len}}}");
        }
        Event::RegionInvalidated { dropped } => {
            let _ = write!(out, "{{\"dropped\":{dropped}}}");
        }
        Event::JitCompiled { id, code_bytes } => {
            let _ = write!(out, "{{\"id\":{id},\"code_bytes\":{code_bytes}}}");
        }
    }
}

/// Appends `s` to `out` as a JSON string literal, quotes included,
/// escaping everything RFC 8259 requires (quote, backslash, and control
/// characters). Shared by every hand-built JSON emitter in the repo so a
/// benchmark name or label with special characters can never produce an
/// invalid document.
pub fn push_json_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders `s` as a JSON string literal (quotes included, escaped).
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_str(&mut out, s);
    out
}

/// An incremental, escaping-safe writer for one flat JSON object or
/// array. Field order is insertion order, so output is deterministic;
/// nested structure is composed by rendering the inner writer first and
/// splicing it in with [`JsonWriter::field_raw`] / [`JsonWriter::push_raw`].
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    first: bool,
    close: char,
}

impl JsonWriter {
    /// Starts a JSON object (`{...}`).
    #[must_use]
    pub fn object() -> Self {
        JsonWriter {
            buf: String::from("{"),
            first: true,
            close: '}',
        }
    }

    /// Starts a JSON array (`[...]`).
    #[must_use]
    pub fn array() -> Self {
        JsonWriter {
            buf: String::from("["),
            first: true,
            close: ']',
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.buf.push(',');
        }
    }

    fn key(&mut self, key: &str) {
        self.sep();
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Appends a string field, escaping the value.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        push_json_str(&mut self.buf, value);
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        use std::fmt::Write as _;
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Appends a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) {
        use std::fmt::Write as _;
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Appends a float field with `precision` fractional digits.
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    pub fn field_f64(&mut self, key: &str, value: f64, precision: usize) {
        use std::fmt::Write as _;
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.precision$}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Appends a field whose value is already-rendered JSON
    /// (a nested [`JsonWriter::finish`] result, or a literal).
    pub fn field_raw(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.buf.push_str(raw);
    }

    /// Appends an already-rendered JSON value to an array.
    pub fn push_raw(&mut self, raw: &str) {
        self.sep();
        self.buf.push_str(raw);
    }

    /// Appends a float element to an array with `precision` fractional
    /// digits. Non-finite values render as `null`, exactly like
    /// [`JsonWriter::field_f64`] — `NaN`/`inf` must never leak into a
    /// document (RFC 8259 has no spelling for them).
    pub fn push_f64_elem(&mut self, value: f64, precision: usize) {
        use std::fmt::Write as _;
        self.sep();
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.precision$}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Appends a string element to an array, escaping it.
    pub fn push_str_elem(&mut self, value: &str) {
        self.sep();
        push_json_str(&mut self.buf, value);
    }

    /// Closes the container and returns the rendered JSON.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push(self.close);
        self.buf
    }
}

/// A JSON syntax error from [`validate_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Checks that `text` is one well-formed JSON value (RFC 8259 syntax;
/// no semantic validation). This is the "round-trips through a JSON
/// parser" half of the exporter tests, kept dependency-free.
///
/// # Errors
///
/// Returns the first [`JsonError`] encountered.
pub fn validate_json(text: &str) -> Result<(), JsonError> {
    let b = text.as_bytes();
    let mut pos = 0;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(JsonError {
            offset: pos,
            message: "trailing data after value",
        });
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        // Name the usual float-formatter leaks specifically: `NaN`,
        // `Infinity`, `inf` and friends are how broken emitters spell
        // non-finite doubles, and "expected a JSON value" would bury
        // the actual bug.
        Some(b'N' | b'I' | b'i') => Err(JsonError {
            offset: *pos,
            message: "non-finite number token (NaN/Infinity) is not valid JSON",
        }),
        _ => Err(JsonError {
            offset: *pos,
            message: "expected a JSON value",
        }),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(JsonError {
                offset: *pos,
                message: "expected ':' in object",
            });
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or '}' in object",
                })
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or ']' in array",
                })
            }
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            offset: *pos,
            message: "expected a string",
        });
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(JsonError {
                                    offset: *pos,
                                    message: "bad \\u escape",
                                });
                            }
                            *pos += 1;
                        }
                    }
                    _ => {
                        return Err(JsonError {
                            offset: *pos,
                            message: "bad escape",
                        })
                    }
                }
            }
            0x00..=0x1F => {
                return Err(JsonError {
                    offset: *pos,
                    message: "unescaped control character",
                })
            }
            _ => *pos += 1,
        }
    }
    Err(JsonError {
        offset: *pos,
        message: "unterminated string",
    })
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'N' | b'n' | b'I' | b'i')) {
            return Err(JsonError {
                offset: start,
                message: "non-finite number token (NaN/Infinity) is not valid JSON",
            });
        }
    }
    // RFC 8259 integer part: "0", or a nonzero digit followed by more.
    match b.get(*pos) {
        Some(b'0') => {
            *pos += 1;
            if b.get(*pos).is_some_and(u8::is_ascii_digit) {
                return Err(JsonError {
                    offset: start,
                    message: "leading zero in number",
                });
            }
        }
        Some(c) if c.is_ascii_digit() => {
            eat_digits(b, pos);
        }
        _ => {
            return Err(JsonError {
                offset: start,
                message: "malformed number",
            })
        }
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(JsonError {
                offset: *pos,
                message: "malformed fraction",
            });
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(JsonError {
                offset: *pos,
                message: "malformed exponent",
            });
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), JsonError> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError {
            offset: *pos,
            message: "bad literal",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Unit;

    fn sample_events() -> Vec<Stamped> {
        vec![
            Stamped {
                cycle: 10,
                event: Event::PhaseEnter { sig: 0xAB },
            },
            Stamped {
                cycle: 20,
                event: Event::GateOff {
                    unit: Unit::Vpu,
                    stall: 530,
                },
            },
            Stamped {
                cycle: 900,
                event: Event::FaultDelivered { kind: 1 },
            },
            Stamped {
                cycle: 1000,
                event: Event::GateOn {
                    unit: Unit::Vpu,
                    wake_stall: 530,
                },
            },
            Stamped {
                cycle: 1500,
                event: Event::PhaseExit {
                    sig: 0xAB,
                    windows: 3,
                },
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_pairs_and_categories() {
        let json = chrome_trace_json(&sample_events());
        validate_json(&json).expect("chrome trace must be well-formed");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"cat\":\"phase\""));
        assert!(json.contains("\"cat\":\"gating\""));
        assert!(json.contains("\"cat\":\"faults\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let text = jsonl(&sample_events());
        assert_eq!(text.lines().count(), 5);
        for line in text.lines() {
            validate_json(line).expect("each JSONL line parses");
        }
    }

    #[test]
    fn empty_event_list_exports_cleanly() {
        let json = chrome_trace_json(&[]);
        validate_json(&json).expect("empty trace parses");
        assert_eq!(jsonl(&[]), "");
    }

    #[test]
    fn json_writer_escapes_and_validates() {
        let mut inner = JsonWriter::array();
        inner.push_str_elem("plain");
        inner.push_str_elem("quote\" slash\\ ctrl\u{01}\n");
        inner.push_raw("42");
        let mut w = JsonWriter::object();
        w.field_str("name", "bench \"x\"\t");
        w.field_u64("count", 7);
        w.field_i64("delta", -3);
        w.field_f64("ratio", 0.5, 3);
        w.field_f64("bad", f64::NAN, 3);
        w.field_bool("ok", true);
        w.field_raw("items", &inner.finish());
        let out = w.finish();
        validate_json(&out).expect("writer output parses");
        assert!(out.contains("\"name\":\"bench \\\"x\\\"\\t\""));
        assert!(out.contains("\"bad\":null"));
        assert!(out.contains("\\u0001"));
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(JsonWriter::object().finish(), "{}");
        assert_eq!(JsonWriter::array().finish(), "[]");
    }

    #[test]
    fn non_finite_floats_never_leak_into_json() {
        // Writer side: NaN/±inf must render as `null` in both field and
        // array-element position.
        let mut arr = JsonWriter::array();
        arr.push_f64_elem(1.5, 3);
        arr.push_f64_elem(f64::NAN, 3);
        arr.push_f64_elem(f64::INFINITY, 3);
        arr.push_f64_elem(f64::NEG_INFINITY, 3);
        let rendered = arr.finish();
        assert_eq!(rendered, "[1.500,null,null,null]");
        validate_json(&rendered).expect("array with nulled non-finites parses");
        let mut obj = JsonWriter::object();
        obj.field_f64("inf", f64::INFINITY, 6);
        obj.field_f64("neg_inf", f64::NEG_INFINITY, 6);
        obj.field_f64("nan", f64::NAN, 6);
        let rendered = obj.finish();
        assert_eq!(rendered, "{\"inf\":null,\"neg_inf\":null,\"nan\":null}");
        validate_json(&rendered).expect("object with nulled non-finites parses");

        // Validator side: the common non-finite spellings (what `{}`
        // formatting of a raw f64 would have produced) are rejected with
        // an error naming the actual bug, at any nesting depth.
        for bad in [
            "NaN",
            "-NaN",
            "Infinity",
            "-Infinity",
            "inf",
            "-inf",
            "[1,NaN]",
            "{\"x\":Infinity}",
            "{\"x\":[0.5,-inf]}",
        ] {
            let err = validate_json(bad).expect_err(bad);
            assert!(
                err.message.contains("non-finite"),
                "{bad}: wrong diagnosis: {err}"
            );
        }
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\u00e9\"",
            "{\"a\":[1,2,{\"b\":false}]}",
            "  [1, 2]  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "truth",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
