//! The flight-recorder event taxonomy.
//!
//! Events are small `Copy` values carrying only plain integers, so
//! emitting one never formats or allocates. Cross-crate identifiers are
//! pre-hashed (phase signatures become a 64-bit key via
//! `PhaseSignature::key`) or encoded (gating policies as their 4-bit PVT
//! nibble) before they reach this crate, which is what keeps
//! `powerchop-telemetry` dependency-free and usable from every layer of
//! the stack.

/// A power-managed unit, as seen by the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// The vector processing unit.
    Vpu,
    /// The large branch prediction unit.
    Bpu,
    /// The mid-level cache (way-gated).
    Mlc,
}

impl Unit {
    /// All units, in the fixed index order used by dwell accounting.
    pub const ALL: [Unit; 3] = [Unit::Vpu, Unit::Bpu, Unit::Mlc];

    /// Stable dense index (`0..3`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Unit::Vpu => 0,
            Unit::Bpu => 1,
            Unit::Mlc => 2,
        }
    }

    /// Lower-case label for exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Unit::Vpu => "vpu",
            Unit::Bpu => "bpu",
            Unit::Mlc => "mlc",
        }
    }
}

/// One flight-recorder event. Every variant is cycle-stamped by the ring
/// buffer ([`crate::Stamped`]); no wall-clock time ever enters the
/// stream, so traced runs replay bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// Execution entered the phase with signature key `sig`.
    PhaseEnter {
        /// 64-bit phase-signature key.
        sig: u64,
    },
    /// Execution left phase `sig` after `windows` execution windows.
    PhaseExit {
        /// 64-bit phase-signature key.
        sig: u64,
        /// Consecutive windows the phase was resident.
        windows: u64,
    },
    /// A PVT lookup hit for phase `sig`.
    PvtHit {
        /// 64-bit phase-signature key.
        sig: u64,
    },
    /// A PVT lookup missed for phase `sig` (interrupts into the CDE).
    PvtMiss {
        /// 64-bit phase-signature key.
        sig: u64,
    },
    /// Phase `sig` was evicted from the PVT to make room.
    PvtEvict {
        /// 64-bit phase-signature key.
        sig: u64,
    },
    /// The CDE armed a profiling measurement for phase `sig`.
    CdeProfileStart {
        /// 64-bit phase-signature key.
        sig: u64,
    },
    /// The CDE decided a policy for phase `sig`.
    CdeVerdict {
        /// 64-bit phase-signature key.
        sig: u64,
        /// The decided policy's 4-bit PVT encoding (`V | B<<1 | M<<2`).
        policy: u8,
    },
    /// Unit `unit` was gated on, paying `wake_stall` stall cycles.
    GateOn {
        /// The unit.
        unit: Unit,
        /// Stall cycles charged for the wake (switch + save/restore).
        wake_stall: u64,
    },
    /// Unit `unit` was gated off (or way-gated down, for the MLC).
    GateOff {
        /// The unit.
        unit: Unit,
        /// Stall cycles charged for the transition.
        stall: u64,
    },
    /// The degradation guard observed an anomaly on phase `sig`.
    DegradeAnomaly {
        /// 64-bit phase-signature key.
        sig: u64,
    },
    /// The guard failed safe to full power for phase `sig`.
    DegradeFailSafe {
        /// 64-bit phase-signature key.
        sig: u64,
    },
    /// The guard pinned phase `sig` to a fixed policy.
    DegradeRepin {
        /// 64-bit phase-signature key.
        sig: u64,
        /// The pinned policy's 4-bit PVT encoding.
        policy: u8,
    },
    /// The fault layer delivered an injected fault.
    FaultDelivered {
        /// [`Event::fault_kind_label`]-decodable fault-kind code.
        kind: u8,
    },
    /// A crash-safe snapshot was written.
    CheckpointWritten {
        /// Guest instructions retired at the snapshot point.
        retired: u64,
    },
    /// The BT layer installed a new translation in the region cache.
    TranslationInstalled {
        /// Translation ID.
        id: u32,
        /// Guest instructions covered by the translation.
        guest_len: u32,
    },
    /// A fault invalidated part of the region cache.
    RegionInvalidated {
        /// Translations dropped.
        dropped: u64,
    },
    /// The JIT compiled a translation to native code.
    JitCompiled {
        /// Translation ID.
        id: u32,
        /// Bytes of native code emitted.
        code_bytes: u32,
    },
}

impl Event {
    /// Short machine-readable event name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Event::PhaseEnter { .. } => "phase_enter",
            Event::PhaseExit { .. } => "phase_exit",
            Event::PvtHit { .. } => "pvt_hit",
            Event::PvtMiss { .. } => "pvt_miss",
            Event::PvtEvict { .. } => "pvt_evict",
            Event::CdeProfileStart { .. } => "cde_profile_start",
            Event::CdeVerdict { .. } => "cde_verdict",
            Event::GateOn { .. } => "gate_on",
            Event::GateOff { .. } => "gate_off",
            Event::DegradeAnomaly { .. } => "degrade_anomaly",
            Event::DegradeFailSafe { .. } => "degrade_failsafe",
            Event::DegradeRepin { .. } => "degrade_repin",
            Event::FaultDelivered { .. } => "fault_delivered",
            Event::CheckpointWritten { .. } => "checkpoint_written",
            Event::TranslationInstalled { .. } => "translation_installed",
            Event::RegionInvalidated { .. } => "region_invalidated",
            Event::JitCompiled { .. } => "jit_compiled",
        }
    }

    /// Event category (the Chrome trace `cat` field).
    #[must_use]
    pub fn category(&self) -> &'static str {
        match self {
            Event::PhaseEnter { .. } | Event::PhaseExit { .. } => "phase",
            Event::PvtHit { .. } | Event::PvtMiss { .. } | Event::PvtEvict { .. } => "pvt",
            Event::CdeProfileStart { .. } | Event::CdeVerdict { .. } => "cde",
            Event::GateOn { .. } | Event::GateOff { .. } => "gating",
            Event::DegradeAnomaly { .. }
            | Event::DegradeFailSafe { .. }
            | Event::DegradeRepin { .. } => "degrade",
            Event::FaultDelivered { .. } => "faults",
            Event::CheckpointWritten { .. } => "checkpoint",
            Event::TranslationInstalled { .. }
            | Event::RegionInvalidated { .. }
            | Event::JitCompiled { .. } => "bt",
        }
    }

    /// Decodes a [`Event::FaultDelivered`] kind code into its label.
    /// Codes follow `FaultKind::ALL` order in `powerchop-faults`.
    #[must_use]
    pub fn fault_kind_label(kind: u8) -> &'static str {
        match kind {
            0 => "async_interrupt",
            1 => "context_switch",
            2 => "region_cache_invalidation",
            3 => "pvt_corruption",
            4 => "pvt_eviction",
            5 => "workload_perturbation",
            _ => "unknown",
        }
    }
}

/// A cycle-stamped event, as stored in the ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    /// Core cycle count at emission.
    pub cycle: u64,
    /// The event.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_every_variant() {
        let evs = [
            Event::PhaseEnter { sig: 1 },
            Event::PhaseExit { sig: 1, windows: 2 },
            Event::PvtHit { sig: 1 },
            Event::PvtMiss { sig: 1 },
            Event::PvtEvict { sig: 1 },
            Event::CdeProfileStart { sig: 1 },
            Event::CdeVerdict {
                sig: 1,
                policy: 0xF,
            },
            Event::GateOn {
                unit: Unit::Vpu,
                wake_stall: 530,
            },
            Event::GateOff {
                unit: Unit::Mlc,
                stall: 50,
            },
            Event::DegradeAnomaly { sig: 1 },
            Event::DegradeFailSafe { sig: 1 },
            Event::DegradeRepin {
                sig: 1,
                policy: 0xF,
            },
            Event::FaultDelivered { kind: 0 },
            Event::CheckpointWritten { retired: 10 },
            Event::TranslationInstalled {
                id: 3,
                guest_len: 8,
            },
            Event::RegionInvalidated { dropped: 4 },
            Event::JitCompiled {
                id: 3,
                code_bytes: 256,
            },
        ];
        for ev in evs {
            assert!(!ev.name().is_empty());
            assert!(!ev.category().is_empty());
        }
    }

    #[test]
    fn unit_indices_are_dense() {
        for (i, u) in Unit::ALL.iter().enumerate() {
            assert_eq!(u.index(), i);
        }
    }

    #[test]
    fn fault_labels_match_fixed_order() {
        assert_eq!(Event::fault_kind_label(0), "async_interrupt");
        assert_eq!(Event::fault_kind_label(5), "workload_perturbation");
        assert_eq!(Event::fault_kind_label(99), "unknown");
    }
}
