//! Fixed-capacity event ring buffer.
//!
//! The flight recorder must never grow without bound mid-run, so events
//! land in a preallocated ring. When the ring is full, the **oldest**
//! event is overwritten (flight-recorder semantics: the most recent
//! history survives a crash) and the dropped-event counter increments —
//! `recorded() == len() + dropped()` holds exactly at all times.

use crate::event::{Event, Stamped};

/// A fixed-capacity ring of cycle-stamped events.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Stamped>,
    capacity: usize,
    /// Index of the oldest event when the ring has wrapped.
    head: usize,
    dropped: u64,
    recorded: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
            recorded: 0,
        }
    }

    /// Capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full. Exact:
    /// `recorded() == len() as u64 + dropped()`.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Pushes an event, overwriting the oldest when full.
    pub fn push(&mut self, cycle: u64, event: Event) {
        let stamped = Stamped { cycle, event };
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(stamped);
        } else {
            self.buf[self.head] = stamped;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Iterates retained events oldest-first (cycle stamps are
    /// non-decreasing because pushes are).
    pub fn iter(&self) -> impl Iterator<Item = &Stamped> {
        let (wrapped, linear) = self.buf.split_at(self.head);
        linear.iter().chain(wrapped.iter())
    }

    /// Copies retained events into a vector, oldest-first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Stamped> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sig: u64) -> Event {
        Event::PhaseEnter { sig }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = EventRing::new(3);
        for i in 0..5u64 {
            r.push(i, ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 5);
        let cycles: Vec<u64> = r.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "most recent history survives");
    }

    #[test]
    fn drop_accounting_is_exact_across_many_wraps() {
        let mut r = EventRing::new(7);
        for i in 0..1000u64 {
            r.push(i, ev(i));
            assert_eq!(r.recorded(), r.len() as u64 + r.dropped());
        }
        assert_eq!(r.dropped(), 1000 - 7);
        let cycles: Vec<u64> = r.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, (993..1000).collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = EventRing::new(0);
        r.push(1, ev(1));
        r.push(2, ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.iter().next().map(|s| s.cycle), Some(2));
    }
}
