//! Request-scoped spans: per-request phase ledgers and trace ids.
//!
//! A serving request moves through a fixed pipeline of phases —
//! accept, parse, queue, compute, cache, journal, respond — and the
//! [`SpanLedger`] charges wall-clock nanoseconds (plus, for the
//! compute phase, simulated cycles) to each one. The ledger is two
//! fixed arrays indexed by [`Phase`]: recording is a saturating add
//! into a stack-sized struct, with no allocation on the hot path.
//!
//! [`SpanRecorder`] follows the same zero-cost-when-disabled contract
//! as [`crate::Tracer`]: a disabled recorder holds `None` and every
//! recording call is an inlined no-op, so code threaded through with a
//! recorder pays nothing when observability is off. The
//! `bench_observability` binary measures both sides of that claim.
//!
//! Trace ids are 64-bit values rendered as 16 lowercase hex digits.
//! [`trace_id`] derives the `n`-th id from a seed via the SplitMix64
//! finalizer, so a daemon started with a fixed `--seed` hands out a
//! reproducible id sequence — the property the determinism tests pin.

/// Number of phases in the fixed span taxonomy.
pub const PHASE_COUNT: usize = 7;

/// One phase of the serving pipeline. The discriminants index the
/// ledger arrays; the order is the canonical reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for and reading the request bytes off the socket.
    Accept,
    /// Parsing and validating the request line.
    Parse,
    /// Sitting in the worker-pool queue before a worker picked it up.
    Queue,
    /// Running the simulation on a worker.
    Compute,
    /// Result-cache lookups and stores.
    Cache,
    /// Durability work: journaling the intent and its completion.
    Journal,
    /// Serializing and writing the reply back to the client.
    Respond,
}

impl Phase {
    /// Every phase, in canonical reporting order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Accept,
        Phase::Parse,
        Phase::Queue,
        Phase::Compute,
        Phase::Cache,
        Phase::Journal,
        Phase::Respond,
    ];

    /// The phase's wire label, as used in access-log span keys.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Phase::Accept => "accept",
            Phase::Parse => "parse",
            Phase::Queue => "queue",
            Phase::Compute => "compute",
            Phase::Cache => "cache",
            Phase::Journal => "journal",
            Phase::Respond => "respond",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// Fixed-size per-request ledger: wall-clock nanoseconds per phase,
/// plus simulated cycles for the phases that have them (compute).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanLedger {
    wall_ns: [u64; PHASE_COUNT],
    cycles: [u64; PHASE_COUNT],
}

impl SpanLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `ns` wall-clock nanoseconds to `phase` (saturating).
    #[inline]
    pub fn record(&mut self, phase: Phase, ns: u64) {
        let slot = &mut self.wall_ns[phase.index()];
        *slot = slot.saturating_add(ns);
    }

    /// Charges `cycles` simulated cycles to `phase` (saturating).
    #[inline]
    pub fn record_cycles(&mut self, phase: Phase, cycles: u64) {
        let slot = &mut self.cycles[phase.index()];
        *slot = slot.saturating_add(cycles);
    }

    /// Wall-clock nanoseconds charged to `phase` so far.
    #[must_use]
    pub fn wall_ns(&self, phase: Phase) -> u64 {
        self.wall_ns[phase.index()]
    }

    /// Simulated cycles charged to `phase` so far.
    #[must_use]
    pub fn cycles(&self, phase: Phase) -> u64 {
        self.cycles[phase.index()]
    }

    /// Total wall-clock nanoseconds across every phase (saturating).
    #[must_use]
    pub fn total_wall_ns(&self) -> u64 {
        self.wall_ns
            .iter()
            .fold(0u64, |acc, ns| acc.saturating_add(*ns))
    }
}

/// A maybe-recording span ledger, mirroring [`crate::Tracer`]'s
/// zero-cost-when-disabled shape: disabled is `None`, and the hot-path
/// calls are inlined no-ops in that state.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    ledger: Option<Box<SpanLedger>>,
}

impl SpanRecorder {
    /// A recorder that drops everything. This is the hot-path default.
    #[must_use]
    pub fn disabled() -> Self {
        Self { ledger: None }
    }

    /// A live recorder with an empty ledger.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            ledger: Some(Box::default()),
        }
    }

    /// Whether this recorder is actually recording.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.ledger.is_some()
    }

    /// Charges `ns` wall-clock nanoseconds to `phase` if recording.
    #[inline]
    pub fn record(&mut self, phase: Phase, ns: u64) {
        if let Some(ledger) = &mut self.ledger {
            ledger.record(phase, ns);
        }
    }

    /// Charges simulated `cycles` to `phase` if recording.
    #[inline]
    pub fn record_cycles(&mut self, phase: Phase, cycles: u64) {
        if let Some(ledger) = &mut self.ledger {
            ledger.record_cycles(phase, cycles);
        }
    }

    /// The ledger, when recording.
    #[must_use]
    pub fn ledger(&self) -> Option<&SpanLedger> {
        self.ledger.as_deref()
    }
}

/// Derives the `n`-th trace id from `seed` via the SplitMix64
/// finalizer. Pure: the same `(seed, n)` always yields the same id,
/// which is what makes `--seed` runs hand out reproducible ids.
#[must_use]
pub fn trace_id(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_add(n.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Renders a trace id in its wire form: 16 lowercase hex digits.
#[must_use]
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_per_phase() {
        let mut ledger = SpanLedger::new();
        ledger.record(Phase::Queue, 10);
        ledger.record(Phase::Queue, 5);
        ledger.record(Phase::Compute, 100);
        ledger.record_cycles(Phase::Compute, 42);
        assert_eq!(ledger.wall_ns(Phase::Queue), 15);
        assert_eq!(ledger.wall_ns(Phase::Compute), 100);
        assert_eq!(ledger.wall_ns(Phase::Accept), 0);
        assert_eq!(ledger.cycles(Phase::Compute), 42);
        assert_eq!(ledger.total_wall_ns(), 115);
    }

    #[test]
    fn ledger_saturates_instead_of_overflowing() {
        let mut ledger = SpanLedger::new();
        ledger.record(Phase::Respond, u64::MAX);
        ledger.record(Phase::Respond, 1);
        assert_eq!(ledger.wall_ns(Phase::Respond), u64::MAX);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(Phase::Parse, 1_000);
        rec.record_cycles(Phase::Compute, 1_000);
        assert!(rec.ledger().is_none());
    }

    #[test]
    fn enabled_recorder_exposes_its_ledger() {
        let mut rec = SpanRecorder::enabled();
        assert!(rec.is_enabled());
        rec.record(Phase::Parse, 1_000);
        let ledger = rec.ledger().expect("enabled recorder has a ledger");
        assert_eq!(ledger.wall_ns(Phase::Parse), 1_000);
    }

    #[test]
    fn phase_labels_cover_the_taxonomy_in_order() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["accept", "parse", "queue", "compute", "cache", "journal", "respond"]
        );
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..64).map(|n| trace_id(0xDEAD_BEEF, n)).collect();
        let b: Vec<u64> = (0..64).map(|n| trace_id(0xDEAD_BEEF, n)).collect();
        assert_eq!(a, b, "same seed, same sequence");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "no collisions in a short run");
        assert_ne!(trace_id(1, 0), trace_id(2, 0), "seed changes the stream");
    }

    #[test]
    fn trace_id_wire_form_is_sixteen_hex_digits() {
        let rendered = format_trace_id(0xAB);
        assert_eq!(rendered, "00000000000000ab");
        assert_eq!(rendered.len(), 16);
        assert!(rendered.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
