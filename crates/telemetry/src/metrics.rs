//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms.
//!
//! Keys are `&'static str`, so updating a metric never allocates; the
//! backing maps are `BTreeMap`s, so every snapshot and exposition walks
//! metrics in sorted-name order — byte-identical output for identical
//! runs, which the determinism tests rely on.
//!
//! Metric names may carry a Prometheus label set inline:
//! `serve_request_duration_ms{op="run"}` is one registry key whose
//! exposition renders the base name with merged labels
//! (`serve_request_duration_ms_bucket{op="run",le="..."}`), with the
//! `# TYPE`/`# HELP` metadata emitted once per base name.

use std::collections::{BTreeMap, BTreeSet};

/// Number of histogram buckets: bucket 0 holds zero-valued samples,
/// bucket `i >= 1` holds samples in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// The bucket index a value falls into.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket sample counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by locating the
    /// bucket holding the rank-`⌈q·count⌉` sample and interpolating
    /// linearly inside it. The estimate always lands inside the bucket
    /// that contains the true quantile, so its error is bounded by the
    /// bucket width (a factor of two). Returns 0.0 for an empty
    /// histogram.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let before = cumulative as f64;
            cumulative += n;
            if cumulative as f64 >= rank {
                let lo = match i {
                    0 => 0.0,
                    _ => (1u64 << (i - 1)) as f64,
                };
                let hi = match i {
                    0 => 0.0,
                    64 => u64::MAX as f64,
                    _ => (1u64 << i) as f64,
                };
                let frac = (rank - before) / (*n as f64);
                return lo + (hi - lo) * frac;
            }
        }
        u64::MAX as f64
    }
}

/// Splits a registry key into its base metric name and the inline
/// label set, if any: `a{op="run"}` becomes `("a", Some("op=\"run\""))`.
fn split_labels(name: &'static str) -> (&'static str, Option<&'static str>) {
    match name.find('{') {
        Some(i) => (
            &name[..i],
            name[i + 1..].strip_suffix('}').filter(|l| !l.is_empty()),
        ),
        None => (name, None),
    }
}

/// A registry of named counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    help: BTreeMap<&'static str, &'static str>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets counter `name` to an absolute (cumulative) value — used when
    /// sampling an existing monotone stats struct.
    pub fn counter_set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Sets gauge `name`.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Registers histogram `name` with zero samples if absent, so it
    /// appears in the exposition before its first observation (the
    /// pre-seeded-metric convention scrapers rely on).
    pub fn histogram_seed(&mut self, name: &'static str) {
        self.histograms.entry(name).or_default();
    }

    /// Registers a `# HELP` line for base metric name `name` (the key
    /// without any inline label set). The text must be a single line;
    /// it is emitted verbatim.
    pub fn set_help(&mut self, name: &'static str, help: &'static str) {
        self.help.insert(name, help);
    }

    /// Reads counter `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads histogram `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Gauges in sorted-name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Histograms in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Whether the registry holds no metrics at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4). Deterministic: metrics appear in sorted-name
    /// order and floats use Rust's shortest round-trip formatting.
    /// `# HELP`/`# TYPE` metadata is emitted once per base metric name
    /// (keys with inline labels share their base's metadata block).
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut described: BTreeSet<&str> = BTreeSet::new();
        for (name, value) in &self.counters {
            let (base, _) = split_labels(name);
            self.describe(&mut out, &mut described, base, "counter");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, value) in &self.gauges {
            let (base, _) = split_labels(name);
            self.describe(&mut out, &mut described, base, "gauge");
            out.push_str(name);
            out.push(' ');
            out.push_str(&format_f64(*value));
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            self.describe(&mut out, &mut described, base, "histogram");
            let bucket_open = |out: &mut String| {
                out.push_str(base);
                out.push_str("_bucket{");
                if let Some(l) = labels {
                    out.push_str(l);
                    out.push(',');
                }
                out.push_str("le=\"");
            };
            let suffixed = |out: &mut String, suffix: &str| {
                out.push_str(base);
                out.push_str(suffix);
                if let Some(l) = labels {
                    out.push('{');
                    out.push_str(l);
                    out.push('}');
                }
                out.push(' ');
            };
            let mut cumulative = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cumulative += n;
                // Only materialize buckets up to the highest non-empty
                // one; the +Inf bucket always closes the series.
                if *n == 0 && cumulative != h.count {
                    continue;
                }
                bucket_open(&mut out);
                if i >= 64 {
                    out.push_str("+Inf");
                } else {
                    out.push_str(&Histogram::bucket_upper_bound(i).to_string());
                }
                out.push_str("\"} ");
                out.push_str(&cumulative.to_string());
                out.push('\n');
                if cumulative == h.count {
                    break;
                }
            }
            bucket_open(&mut out);
            out.push_str("+Inf\"} ");
            out.push_str(&h.count.to_string());
            out.push('\n');
            suffixed(&mut out, "_sum");
            out.push_str(&h.sum.to_string());
            out.push('\n');
            suffixed(&mut out, "_count");
            out.push_str(&h.count.to_string());
            out.push('\n');
        }
        out
    }

    /// Emits the `# HELP`/`# TYPE` block for `base` the first time it
    /// is seen in this exposition.
    fn describe<'a>(
        &self,
        out: &mut String,
        described: &mut BTreeSet<&'a str>,
        base: &'a str,
        kind: &str,
    ) {
        if !described.insert(base) {
            return;
        }
        if let Some(help) = self.help.get(base) {
            out.push_str("# HELP ");
            out.push_str(base);
            out.push(' ');
            out.push_str(help);
            out.push('\n');
        }
        out.push_str("# TYPE ");
        out.push_str(base);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
    }
}

/// Formats an `f64` for text exposition: finite values round-trip, and
/// non-finite values use Prometheus spellings.
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v}")
    }
}

/// A source of registry samples. State-bearing crates implement this so
/// the simulation loop can fold their cumulative stats into the registry
/// at the configured sampling interval without `powerchop-telemetry`
/// depending on them.
pub trait MetricSource {
    /// Writes this source's current values into `reg` (typically via
    /// [`MetricsRegistry::counter_set`] / [`MetricsRegistry::gauge_set`]).
    fn sample_metrics(&self, reg: &mut MetricsRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(3), 7);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a_total", 2);
        r.counter_add("a_total", 3);
        r.counter_set("b_total", 7);
        r.gauge_set("g", 1.5);
        assert_eq!(r.counter("a_total"), 5);
        assert_eq!(r.counter("b_total"), 7);
        assert_eq!(r.gauge("g"), Some(1.5));
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn histogram_tracks_count_and_sum() {
        let mut r = MetricsRegistry::new();
        for v in [0u64, 1, 1, 8, 1000] {
            r.observe("h", v);
        }
        let h = r.histogram("h").expect("histogram registered");
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[4], 1); // 8 in [8,16)
        assert_eq!(h.buckets()[10], 1); // 1000 in [512,1024)
    }

    #[test]
    fn prometheus_text_is_sorted_and_well_formed() {
        let mut r = MetricsRegistry::new();
        r.counter_set("z_total", 1);
        r.counter_set("a_total", 2);
        r.gauge_set("power_w", 0.25);
        r.observe("lat", 3);
        r.set_help("lat", "request latency in milliseconds");
        let text = r.to_prometheus_text();
        let a = text.find("a_total").expect("a_total present");
        let z = text.find("z_total").expect("z_total present");
        assert!(a < z, "sorted order");
        assert!(text.contains("# TYPE power_w gauge"));
        assert!(text.contains("# HELP lat request latency in milliseconds"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_sum 3"));
        assert!(text.contains("lat_count 1"));
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ")
                    || line.starts_with("# HELP ")
                    || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn labeled_histograms_merge_labels_and_share_metadata() {
        let mut r = MetricsRegistry::new();
        r.observe("lat{op=\"run\"}", 3);
        r.observe("lat{op=\"sweep\"}", 9);
        r.set_help("lat", "latency");
        let text = r.to_prometheus_text();
        assert_eq!(
            text.matches("# TYPE lat histogram").count(),
            1,
            "one TYPE line per base name:\n{text}"
        );
        assert_eq!(text.matches("# HELP lat latency").count(), 1);
        assert!(text.contains("lat_bucket{op=\"run\",le=\"3\"} 1"));
        assert!(text.contains("lat_bucket{op=\"run\",le=\"+Inf\"} 1"));
        assert!(text.contains("lat_sum{op=\"run\"} 3"));
        assert!(text.contains("lat_count{op=\"sweep\"} 1"));
        assert!(
            !text.contains("lat{op="),
            "no raw keyed series lines leak into histogram output:\n{text}"
        );
    }

    #[test]
    fn seeded_histogram_renders_empty_series() {
        let mut r = MetricsRegistry::new();
        r.histogram_seed("lat{op=\"run\"}");
        let text = r.to_prometheus_text();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{op=\"run\",le=\"+Inf\"} 0"));
        assert!(text.contains("lat_sum{op=\"run\"} 0"));
        assert!(text.contains("lat_count{op=\"run\"} 0"));
    }

    #[test]
    fn quantile_on_empty_histogram_is_zero_never_nan() {
        // A freshly-seeded histogram is scraped before its first sample;
        // the quantile must read as a finite 0.0, never NaN or a
        // division artifact, for every q including the degenerate ones.
        let h = Histogram::default();
        for q in [-1.0, 0.0, 0.5, 0.9, 0.999, 1.0, 2.0, f64::NAN] {
            let est = h.quantile(q);
            assert!(est.is_finite(), "quantile({q}) = {est} is not finite");
            assert_eq!(est, 0.0, "quantile({q}) on empty histogram");
        }
        // One sample at zero exercises the zero-width first bucket: the
        // interpolation must still produce a finite value.
        let mut h = Histogram::default();
        h.observe(0);
        for q in [0.0, 0.5, 1.0] {
            assert!(h.quantile(q).is_finite());
        }
    }

    #[test]
    fn quantile_lands_in_the_true_quantile_bucket() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        let mut samples: Vec<u64> = (0..500u64).map(|i| (i * i * 7 + 3) % 10_000).collect();
        for s in &samples {
            h.observe(*s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let truth = samples[rank - 1];
            let est = h.quantile(q);
            let i = Histogram::bucket_index(truth);
            let lo = if i == 0 {
                0.0
            } else {
                (1u64 << (i - 1)) as f64
            };
            let hi = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
            assert!(
                est >= lo && est <= hi,
                "q={q}: estimate {est} outside true bucket [{lo},{hi}] (truth {truth})"
            );
        }
    }

    #[test]
    fn identical_sequences_render_identically() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.counter_add("x_total", 3);
            r.observe("h", 42);
            r.gauge_set("g", 2.0_f64.sqrt());
            r.to_prometheus_text()
        };
        assert_eq!(build(), build());
    }
}
