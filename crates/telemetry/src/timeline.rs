//! Terminal rendering of a phase/gating timeline from the event stream.
//!
//! This is the **single** place phase boundaries are turned into a
//! timeline: the CLI `trace` subcommand and `examples/phase_timeline.rs`
//! both render through here, so a drawing can never disagree with what
//! the detector actually emitted.

use crate::event::{Event, Stamped, Unit};

/// One contiguous interval of a timeline track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    start: u64,
    end: u64,
    key: u64,
}

/// Extracts phase spans and per-unit gated-off spans from the stream.
/// Spans left open at `total_cycles` are closed there; exits/gate-ons
/// whose opening event was lost to ring wrap-around are dropped.
fn spans(events: &[Stamped], total_cycles: u64) -> (Vec<Span>, [Vec<Span>; 3]) {
    let mut phases = Vec::new();
    let mut open_phase: Option<(u64, u64)> = None;
    let mut off: [Vec<Span>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut open_off: [Option<u64>; 3] = [None; 3];
    for s in events {
        match s.event {
            Event::PhaseEnter { sig } => {
                if let Some((k, start)) = open_phase.take() {
                    phases.push(Span {
                        start,
                        end: s.cycle,
                        key: k,
                    });
                }
                open_phase = Some((sig, s.cycle));
            }
            Event::PhaseExit { sig, .. } => {
                if let Some((k, start)) = open_phase.take() {
                    if k == sig {
                        phases.push(Span {
                            start,
                            end: s.cycle,
                            key: k,
                        });
                    }
                }
            }
            Event::GateOff { unit, .. } => {
                open_off[unit.index()].get_or_insert(s.cycle);
            }
            Event::GateOn { unit, .. } => {
                if let Some(start) = open_off[unit.index()].take() {
                    off[unit.index()].push(Span {
                        start,
                        end: s.cycle,
                        key: 0,
                    });
                }
            }
            _ => {}
        }
    }
    if let Some((k, start)) = open_phase {
        phases.push(Span {
            start,
            end: total_cycles,
            key: k,
        });
    }
    for (i, open) in open_off.iter().enumerate() {
        if let Some(start) = open {
            off[i].push(Span {
                start: *start,
                end: total_cycles,
                key: 0,
            });
        }
    }
    (phases, off)
}

/// The letter assigned to the `n`-th distinct phase.
fn letter(n: usize) -> char {
    const ALPHA: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    ALPHA.get(n).map_or('?', |c| *c as char)
}

/// Renders an ASCII phase/gating timeline of `width` columns covering
/// `[0, total_cycles)`. Each column shows the state at its midpoint
/// cycle: the phase row uses one letter per distinct phase (in order of
/// first appearance), unit rows show `#` while the unit is gated
/// off/down and `.` while fully powered. A legend maps letters to
/// signature keys.
#[must_use]
pub fn render(events: &[Stamped], total_cycles: u64, width: usize) -> String {
    let width = width.clamp(10, 400);
    let (phases, off) = spans(events, total_cycles);

    // Letters in order of first appearance.
    let mut order: Vec<u64> = Vec::new();
    for p in &phases {
        if !order.contains(&p.key) {
            order.push(p.key);
        }
    }
    let letter_of = |key: u64| letter(order.iter().position(|k| *k == key).unwrap_or(usize::MAX));

    let col_cycle = |c: usize| {
        if total_cycles == 0 {
            0
        } else {
            // Column midpoint, computed in u128 to dodge overflow.
            ((2 * c as u128 + 1) * total_cycles as u128 / (2 * width as u128)) as u64
        }
    };
    let covering = |spans: &[Span], cycle: u64| {
        spans
            .iter()
            .find(|s| s.start <= cycle && cycle < s.end.max(s.start + 1))
            .copied()
    };

    let mut out = String::new();
    out.push_str("phase ");
    for c in 0..width {
        let cy = col_cycle(c);
        out.push(covering(&phases, cy).map_or('.', |s| letter_of(s.key)));
    }
    out.push('\n');
    for unit in Unit::ALL {
        out.push_str(&format!("{:<6}", unit.label()));
        for c in 0..width {
            let cy = col_cycle(c);
            out.push(if covering(&off[unit.index()], cy).is_some() {
                '#'
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{:<6}0{:>w$}\n",
        "cycle",
        total_cycles,
        w = width.saturating_sub(1)
    ));

    if !order.is_empty() {
        out.push_str("legend");
        for (i, key) in order.iter().enumerate() {
            let windows: u64 = events
                .iter()
                .filter_map(|s| match s.event {
                    Event::PhaseExit { sig, windows } if sig == *key => Some(windows),
                    _ => None,
                })
                .sum();
            out.push_str(&format!(" {}={key:012x}({windows}w)", letter(i)));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "       # = unit gated off/down · {} phase span(s), {} event(s)\n",
        phases.len(),
        events.len()
    ));
    out
}

/// The height glyph for a value in `0..=1` of full scale.
fn spark_glyph(fraction: f64) -> char {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let idx = (fraction * 7.0).round().clamp(0.0, 7.0);
    // The index was just clamped to 0..=7, well inside u8/usize.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    BARS[idx as usize]
}

/// Renders a one-line sparkline of `values` scaled against their own
/// maximum, newest value last. Missing history (fewer values than
/// `width`) pads with spaces on the left so the line never jumps; the
/// trailing `width` values are shown when there are more. An all-zero
/// (or empty) history renders as baseline bars, never a panic.
#[must_use]
pub fn sparkline(values: &[f64], width: usize) -> String {
    let width = width.clamp(1, 400);
    let shown = &values[values.len().saturating_sub(width)..];
    let max = shown.iter().copied().fold(0.0_f64, f64::max);
    let mut out = String::new();
    for _ in 0..width.saturating_sub(shown.len()) {
        out.push(' ');
    }
    for v in shown {
        let fraction = if max > 0.0 {
            (v / max).clamp(0.0, 1.0)
        } else {
            0.0
        };
        out.push(spark_glyph(fraction));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<Stamped> {
        vec![
            Stamped {
                cycle: 0,
                event: Event::PhaseEnter { sig: 0xA },
            },
            Stamped {
                cycle: 100,
                event: Event::GateOff {
                    unit: Unit::Vpu,
                    stall: 530,
                },
            },
            Stamped {
                cycle: 500,
                event: Event::PhaseExit {
                    sig: 0xA,
                    windows: 5,
                },
            },
            Stamped {
                cycle: 500,
                event: Event::PhaseEnter { sig: 0xB },
            },
            Stamped {
                cycle: 800,
                event: Event::GateOn {
                    unit: Unit::Vpu,
                    wake_stall: 530,
                },
            },
        ]
    }

    #[test]
    fn renders_letters_and_gating_marks() {
        let text = render(&stream(), 1_000, 20);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("phase "));
        let phase_row = &lines[0][6..];
        assert!(phase_row.starts_with('A'), "row: {phase_row}");
        assert!(phase_row.ends_with('B'), "row: {phase_row}");
        let vpu_row = &lines[1][6..];
        assert!(vpu_row.contains('#'), "row: {vpu_row}");
        assert!(vpu_row.starts_with('.'), "vpu on at cycle 0: {vpu_row}");
        assert!(text.contains("legend A="));
        assert!(text.contains("B="));
    }

    #[test]
    fn open_spans_close_at_end_and_orphans_are_dropped() {
        let events = vec![
            // Orphan exit (its enter was lost to ring wrap): dropped.
            Stamped {
                cycle: 10,
                event: Event::PhaseExit {
                    sig: 0xDEAD,
                    windows: 1,
                },
            },
            Stamped {
                cycle: 50,
                event: Event::PhaseEnter { sig: 0xA },
            },
            Stamped {
                cycle: 60,
                event: Event::GateOff {
                    unit: Unit::Mlc,
                    stall: 50,
                },
            },
        ];
        let text = render(&events, 100, 10);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0][6..].ends_with('A'), "open phase runs to the end");
        assert!(lines[3][6..].ends_with('#'), "open gate runs to the end");
        assert!(!text.contains("00000000dead"), "orphan exit ignored");
    }

    #[test]
    fn empty_stream_renders_blank_tracks() {
        let text = render(&[], 1_000, 10);
        assert!(text.lines().next().is_some_and(|l| l.ends_with(".")));
        assert!(!text.contains("legend"));
    }

    #[test]
    fn sparkline_scales_pads_and_survives_degenerate_input() {
        // Max maps to the full bar, zero to the baseline bar.
        let line = sparkline(&[0.0, 4.0], 8);
        assert_eq!(line.chars().count(), 8, "fixed width");
        assert!(line.starts_with("      "), "short history pads left");
        assert!(line.ends_with('█'), "the max is a full bar");
        assert!(line.contains('▁'), "zero is the baseline bar");
        // Longer histories keep only the trailing window.
        let long: Vec<f64> = (0..20).map(f64::from).collect();
        let tail = sparkline(&long, 5);
        assert_eq!(tail.chars().count(), 5);
        assert!(tail.ends_with('█'), "newest (largest) value is last");
        // All-zero and empty histories render, never panic.
        assert_eq!(sparkline(&[0.0; 3], 3), "▁▁▁");
        assert_eq!(sparkline(&[], 4), "    ");
    }
}
