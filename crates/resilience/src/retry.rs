//! Capped exponential backoff with deterministic seeded jitter.
//!
//! Plain exponential backoff has a failure mode in batch systems: every
//! run that failed at the same moment retries at the same moment, so the
//! burst that caused the failures recurs on every attempt. The usual fix
//! is random jitter, but this workspace's contract is that a single
//! `u64` seed reproduces everything — so the jitter here is drawn from
//! the same SplitMix64 generator the fault schedules use, forked per
//! retry stream. Two streams (two benchmarks, two requests) get distinct
//! delays; the same seed always gets the same delays.

use powerchop_faults::SimRng;

/// A backoff policy: `base * 2^(attempt-1)` capped at `cap`, with the
/// upper half of each delay jittered by a seeded draw ("equal jitter").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-attempt delay in milliseconds.
    pub base_ms: u64,
    /// Ceiling every delay is clamped to, jitter included.
    pub cap_ms: u64,
}

impl RetryPolicy {
    /// A policy with the given base and cap (the cap also bounds a
    /// misconfigured base, mirroring the supervise backoff clamp).
    #[must_use]
    pub fn new(base_ms: u64, cap_ms: u64) -> Self {
        RetryPolicy { base_ms, cap_ms }
    }

    /// The un-jittered exponential delay for `attempt` (1-based).
    #[must_use]
    pub fn raw_delay_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64 << attempt.saturating_sub(1).min(16);
        self.base_ms.saturating_mul(factor).min(self.cap_ms)
    }

    /// The jittered delay for `attempt` (1-based) on retry stream
    /// `stream` of `seed`.
    ///
    /// Equal-jitter: half the exponential delay is kept, the other half
    /// is drawn uniformly, so delays stay within `[raw/2, raw]` — spread
    /// out, but never so short that backoff stops backing off. The draw
    /// depends only on `(seed, stream, attempt)`, never on call order,
    /// so concurrent retry loops cannot perturb each other's schedules.
    #[must_use]
    pub fn delay_ms(&self, seed: u64, stream: u64, attempt: u32) -> u64 {
        let raw = self.raw_delay_ms(attempt);
        if raw <= 1 {
            return raw;
        }
        let mut rng = SimRng::new(seed).fork(stream).fork(u64::from(attempt));
        let half = raw / 2;
        (half + rng.gen_range(raw - half + 1)).min(self.cap_ms)
    }
}

/// A stable stream label for named retry loops (FNV-1a over the name),
/// so e.g. each benchmark in a supervised sweep jitters independently.
#[must_use]
pub fn stream_label(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_delays_double_and_cap() {
        let p = RetryPolicy::new(100, 3_000);
        assert_eq!(p.raw_delay_ms(1), 100);
        assert_eq!(p.raw_delay_ms(2), 200);
        assert_eq!(p.raw_delay_ms(3), 400);
        assert_eq!(p.raw_delay_ms(6), 3_000, "capped");
        assert_eq!(p.raw_delay_ms(40), 3_000, "shift is clamped, no overflow");
    }

    #[test]
    fn jittered_delays_stay_in_the_upper_half() {
        let p = RetryPolicy::new(100, 30_000);
        for attempt in 1..=8 {
            let raw = p.raw_delay_ms(attempt);
            for seed in 0..50 {
                let d = p.delay_ms(seed, 7, attempt);
                assert!(
                    d >= raw / 2 && d <= raw,
                    "attempt {attempt} seed {seed}: {d} outside [{}, {raw}]",
                    raw / 2
                );
            }
        }
    }

    #[test]
    fn same_seed_reproduces_and_different_seeds_diverge() {
        let p = RetryPolicy::new(100, 30_000);
        let series = |seed: u64| -> Vec<u64> { (1..=6).map(|a| p.delay_ms(seed, 3, a)).collect() };
        assert_eq!(series(42), series(42), "reproducible per seed");
        assert_ne!(series(1), series(2), "distinct seeds jitter differently");
    }

    #[test]
    fn streams_jitter_independently() {
        let p = RetryPolicy::new(1_000, 30_000);
        let a: Vec<u64> = (1..=4)
            .map(|n| p.delay_ms(9, stream_label("hmmer"), n))
            .collect();
        let b: Vec<u64> = (1..=4)
            .map(|n| p.delay_ms(9, stream_label("namd"), n))
            .collect();
        assert_ne!(a, b, "two benchmarks never retry in lockstep");
    }

    #[test]
    fn tiny_delays_pass_through() {
        let p = RetryPolicy::new(0, 100);
        assert_eq!(p.delay_ms(1, 1, 1), 0);
        let p = RetryPolicy::new(1, 100);
        assert_eq!(p.delay_ms(1, 1, 1), 1);
    }
}
