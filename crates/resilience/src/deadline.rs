//! A single deadline budget shared across queue wait, execution and
//! retries.
//!
//! The failure this prevents: a request with a 2 s deadline waits 1.9 s
//! in the queue, then gets a full 2 s execution watchdog, then fails and
//! is retried with *another* full budget — the client gave up long ago
//! but the server is still burning a worker on its behalf. A
//! [`DeadlineBudget`] is created once per request and *charged* for
//! every phase; whatever remains is all any later phase may spend.

/// A monotonically decreasing millisecond budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineBudget {
    total_ms: u64,
    spent_ms: u64,
}

impl DeadlineBudget {
    /// A fresh budget of `total_ms` milliseconds.
    #[must_use]
    pub fn new(total_ms: u64) -> Self {
        DeadlineBudget {
            total_ms,
            spent_ms: 0,
        }
    }

    /// The original budget.
    #[must_use]
    pub fn total_ms(&self) -> u64 {
        self.total_ms
    }

    /// Milliseconds charged so far (may exceed the total; `remaining_ms`
    /// saturates at zero rather than underflowing).
    #[must_use]
    pub fn spent_ms(&self) -> u64 {
        self.spent_ms
    }

    /// Charges `elapsed_ms` against the budget and returns what remains.
    pub fn charge(&mut self, elapsed_ms: u64) -> u64 {
        self.spent_ms = self.spent_ms.saturating_add(elapsed_ms);
        self.remaining_ms()
    }

    /// Milliseconds still available.
    #[must_use]
    pub fn remaining_ms(&self) -> u64 {
        self.total_ms.saturating_sub(self.spent_ms)
    }

    /// Whether the budget is exhausted.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.spent_ms >= self.total_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_across_phases() {
        let mut b = DeadlineBudget::new(1_000);
        assert_eq!(b.charge(300), 700); // queue wait
        assert_eq!(b.charge(400), 300); // first attempt
        assert_eq!(b.charge(100), 200); // backoff
        assert!(!b.expired());
        assert_eq!(b.total_ms(), 1_000);
        assert_eq!(b.spent_ms(), 800);
    }

    #[test]
    fn overspend_saturates_and_expires() {
        let mut b = DeadlineBudget::new(500);
        assert_eq!(b.charge(600), 0);
        assert!(b.expired());
        assert_eq!(b.charge(u64::MAX), 0, "no underflow / overflow");
        assert!(b.expired());
    }

    #[test]
    fn zero_budget_is_born_expired() {
        let b = DeadlineBudget::new(0);
        assert!(b.expired());
        assert_eq!(b.remaining_ms(), 0);
    }

    #[test]
    fn exact_spend_expires() {
        let mut b = DeadlineBudget::new(100);
        b.charge(100);
        assert!(b.expired());
    }
}
