//! A seeded socket-level chaos injector.
//!
//! The serve-layer analogue of `crates/faults`: where fault schedules
//! corrupt the *simulation*, this module corrupts the *transport*. A
//! [`ChaosSchedule`] samples one [`ChaosPlan`] per outgoing frame from a
//! SplitMix64 stream — delay it, split it across two writes, flip a byte
//! in it, drop the connection mid-frame, or reset before writing at all
//! — and a [`ChaosStream`] applies those plans to any `Read + Write`
//! transport. Because every decision comes from one `u64` seed, an
//! entire hostile-client storm replays bit-for-bit, which is what lets
//! `tests/chaos_soak.rs` assert exact invariants instead of "it usually
//! survives".
//!
//! The decision logic ([`ChaosSchedule::plan`]) is pure and socket-free,
//! so the action distribution is unit-testable without any I/O.

use std::io::{self, Read, Write};
use std::time::Duration;

use powerchop_faults::SimRng;

/// Per-frame hostility probabilities and bounds.
///
/// The action probabilities (`split_p`, `corrupt_p`, `truncate_p`,
/// `reset_p`) are evaluated as a cumulative roll, so their sum should
/// stay at or below 1.0; whatever is left over delivers the frame
/// intact. `delay_p` is rolled independently and composes with any
/// action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability of sleeping before the frame is written.
    pub delay_p: f64,
    /// Upper bound on an injected delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Probability of splitting the frame across two writes.
    pub split_p: f64,
    /// Probability of XOR-corrupting one byte of the frame.
    pub corrupt_p: f64,
    /// Probability of dropping the connection mid-frame.
    pub truncate_p: f64,
    /// Probability of resetting before writing anything.
    pub reset_p: f64,
}

impl ChaosConfig {
    /// No hostility at all: every frame delivers intact, immediately.
    #[must_use]
    pub fn honest() -> Self {
        ChaosConfig {
            delay_p: 0.0,
            max_delay_ms: 0,
            split_p: 0.0,
            corrupt_p: 0.0,
            truncate_p: 0.0,
            reset_p: 0.0,
        }
    }

    /// Frequent interference, bounded delays: the soak-test default.
    #[must_use]
    pub fn hostile() -> Self {
        ChaosConfig {
            delay_p: 0.5,
            max_delay_ms: 40,
            split_p: 0.30,
            corrupt_p: 0.20,
            truncate_p: 0.10,
            reset_p: 0.05,
        }
    }

    /// Occasional interference — enough to exercise the recovery paths
    /// without most connections dying.
    #[must_use]
    pub fn mild() -> Self {
        ChaosConfig {
            delay_p: 0.25,
            max_delay_ms: 15,
            split_p: 0.15,
            corrupt_p: 0.05,
            truncate_p: 0.03,
            reset_p: 0.02,
        }
    }
}

/// What happens to one frame (beyond an optional leading delay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hostility {
    /// The frame is written intact in one call.
    Deliver,
    /// The frame is written in two pieces with a pause between them.
    SplitWrite {
        /// Byte index of the split point (`0 < at < len`).
        at: usize,
        /// Pause between the two writes, in milliseconds.
        pause_ms: u64,
    },
    /// One byte of the frame is XORed with a non-zero mask.
    Corrupt {
        /// Byte index that is corrupted.
        offset: usize,
        /// Non-zero XOR mask applied to that byte.
        mask: u8,
    },
    /// Only a strict prefix is written, then the connection is dropped.
    Truncate {
        /// Bytes written before the drop (`keep < len`).
        keep: usize,
    },
    /// The connection is dropped before anything is written.
    Reset,
}

/// The full decision for one frame: an optional leading delay plus the
/// action applied to the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Milliseconds to sleep before touching the transport.
    pub pre_delay_ms: u64,
    /// What happens to the frame itself.
    pub action: Hostility,
}

/// Counts of every hostility actually applied by a [`ChaosStream`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames submitted through the stream.
    pub frames: u64,
    /// Frames preceded by an injected delay.
    pub delays: u64,
    /// Frames written in two pieces.
    pub splits: u64,
    /// Frames with one byte corrupted.
    pub corruptions: u64,
    /// Frames cut off mid-write (connection dropped).
    pub truncations: u64,
    /// Connections reset before the frame was written.
    pub resets: u64,
}

/// A deterministic per-frame plan generator.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    config: ChaosConfig,
    rng: SimRng,
}

impl ChaosSchedule {
    /// A schedule drawing from `seed` under `config`. Equal seeds and
    /// configs yield identical plan sequences on every platform.
    #[must_use]
    pub fn new(config: ChaosConfig, seed: u64) -> Self {
        ChaosSchedule {
            config,
            rng: SimRng::new(seed).fork(0x43_48_41_4f_53), // "CHAOS"
        }
    }

    /// Samples the plan for the next frame of `frame_len` bytes.
    ///
    /// The draw order (delay roll, delay amount, action roll, action
    /// parameters) is fixed; changing it would silently re-seed every
    /// soak test, so it is pinned by `plans_are_reproducible` below.
    pub fn plan(&mut self, frame_len: usize) -> ChaosPlan {
        let pre_delay_ms = if self.rng.gen_bool(self.config.delay_p) {
            1 + self.rng.gen_range(self.config.max_delay_ms.max(1))
        } else {
            0
        };
        let roll = self.rng.gen_f64();
        let c = &self.config;
        let action = if frame_len < 2 {
            // Too short to split, truncate or meaningfully corrupt.
            Hostility::Deliver
        } else if roll < c.reset_p {
            Hostility::Reset
        } else if roll < c.reset_p + c.truncate_p {
            Hostility::Truncate {
                keep: self.rng.gen_range(frame_len as u64 - 1) as usize,
            }
        } else if roll < c.reset_p + c.truncate_p + c.corrupt_p {
            Hostility::Corrupt {
                offset: self.rng.gen_range(frame_len as u64) as usize,
                mask: (1 + self.rng.gen_range(255)) as u8,
            }
        } else if roll < c.reset_p + c.truncate_p + c.corrupt_p + c.split_p {
            Hostility::SplitWrite {
                at: 1 + self.rng.gen_range(frame_len as u64 - 1) as usize,
                pause_ms: 1 + self.rng.gen_range(5),
            }
        } else {
            Hostility::Deliver
        };
        ChaosPlan {
            pre_delay_ms,
            action,
        }
    }
}

/// A `Read + Write` transport with a chaos schedule applied to every
/// outgoing frame. Reads pass through untouched — the daemon's replies
/// are the thing under test, so the injector never masks them.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: Option<S>,
    schedule: ChaosSchedule,
    stats: ChaosStats,
}

impl<S: Read + Write> ChaosStream<S> {
    /// Wraps `inner` with `schedule`.
    #[must_use]
    pub fn new(inner: S, schedule: ChaosSchedule) -> Self {
        ChaosStream {
            inner: Some(inner),
            schedule,
            stats: ChaosStats::default(),
        }
    }

    /// Whether chaos has dropped the connection yet.
    #[must_use]
    pub fn alive(&self) -> bool {
        self.inner.is_some()
    }

    /// The hostilities applied so far.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Unwraps the transport, if chaos has not already dropped it.
    pub fn into_inner(self) -> Option<S> {
        self.inner
    }

    /// Sends one frame through the next chaos plan and returns the
    /// action that was applied.
    ///
    /// After [`Hostility::Truncate`] or [`Hostility::Reset`] the
    /// underlying transport is dropped (closing a `TcpStream`), and
    /// every later call fails with [`io::ErrorKind::NotConnected`].
    pub fn send_frame(&mut self, frame: &[u8]) -> io::Result<Hostility> {
        let plan = self.schedule.plan(frame.len());
        self.stats.frames += 1;
        if plan.pre_delay_ms > 0 {
            self.stats.delays += 1;
            std::thread::sleep(Duration::from_millis(plan.pre_delay_ms));
        }
        let Some(inner) = self.inner.as_mut() else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection already dropped by chaos",
            ));
        };
        match plan.action {
            Hostility::Deliver => {
                inner.write_all(frame)?;
                inner.flush()?;
            }
            Hostility::SplitWrite { at, pause_ms } => {
                self.stats.splits += 1;
                inner.write_all(&frame[..at])?;
                inner.flush()?;
                std::thread::sleep(Duration::from_millis(pause_ms));
                inner.write_all(&frame[at..])?;
                inner.flush()?;
            }
            Hostility::Corrupt { offset, mask } => {
                self.stats.corruptions += 1;
                let mut bytes = frame.to_vec();
                bytes[offset] ^= mask;
                inner.write_all(&bytes)?;
                inner.flush()?;
            }
            Hostility::Truncate { keep } => {
                self.stats.truncations += 1;
                inner.write_all(&frame[..keep])?;
                inner.flush()?;
                self.inner = None;
            }
            Hostility::Reset => {
                self.stats.resets += 1;
                self.inner = None;
            }
        }
        Ok(plan.action)
    }
}

impl<S: Read + Write> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.inner.as_mut() {
            Some(inner) => inner.read(buf),
            None => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection already dropped by chaos",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actions(seed: u64, frames: usize) -> Vec<ChaosPlan> {
        let mut sched = ChaosSchedule::new(ChaosConfig::hostile(), seed);
        (0..frames).map(|_| sched.plan(64)).collect()
    }

    #[test]
    fn plans_are_reproducible() {
        assert_eq!(actions(7, 200), actions(7, 200));
        assert_ne!(actions(7, 200), actions(8, 200));
    }

    #[test]
    fn hostile_config_exercises_every_action() {
        let plans = actions(1234, 500);
        let mut seen = [false; 5];
        for p in &plans {
            match p.action {
                Hostility::Deliver => seen[0] = true,
                Hostility::SplitWrite { at, .. } => {
                    assert!(at > 0 && at < 64);
                    seen[1] = true;
                }
                Hostility::Corrupt { offset, mask } => {
                    assert!(offset < 64);
                    assert_ne!(mask, 0);
                    seen[2] = true;
                }
                Hostility::Truncate { keep } => {
                    assert!(keep < 64);
                    seen[3] = true;
                }
                Hostility::Reset => seen[4] = true,
            }
        }
        assert!(seen.iter().all(|&s| s), "missing action in {plans:?}");
        assert!(plans.iter().any(|p| p.pre_delay_ms > 0));
        assert!(plans
            .iter()
            .all(|p| p.pre_delay_ms <= ChaosConfig::hostile().max_delay_ms));
    }

    #[test]
    fn honest_config_always_delivers() {
        let mut sched = ChaosSchedule::new(ChaosConfig::honest(), 99);
        for _ in 0..200 {
            let plan = sched.plan(64);
            assert_eq!(plan.action, Hostility::Deliver);
            assert_eq!(plan.pre_delay_ms, 0);
        }
    }

    #[test]
    fn short_frames_are_delivered_not_mangled() {
        let mut sched = ChaosSchedule::new(ChaosConfig::hostile(), 5);
        for _ in 0..100 {
            assert_eq!(sched.plan(1).action, Hostility::Deliver);
        }
    }

    /// An in-memory transport: writes accumulate, reads drain a canned
    /// reply. Lets the stream wrapper be tested without sockets.
    struct MemPipe {
        written: Vec<u8>,
    }

    impl Read for MemPipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            buf[0] = b'!';
            Ok(1)
        }
    }

    impl Write for MemPipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stream_applies_plans_and_dies_on_drop_actions() {
        // A config that always resets: first frame kills the transport.
        let cfg = ChaosConfig {
            reset_p: 1.0,
            ..ChaosConfig::honest()
        };
        let mut s = ChaosStream::new(
            MemPipe {
                written: Vec::new(),
            },
            ChaosSchedule::new(cfg, 1),
        );
        assert!(s.alive());
        assert_eq!(
            s.send_frame(b"{\"op\":\"status\"}\n").expect("send"),
            Hostility::Reset
        );
        assert!(!s.alive());
        assert_eq!(s.stats().resets, 1);
        let err = s.send_frame(b"again\n").expect_err("dead transport");
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);
        let mut buf = [0u8; 4];
        assert!(s.read(&mut buf).is_err());
        assert!(s.into_inner().is_none());
    }

    #[test]
    fn corruption_changes_exactly_one_byte() {
        let cfg = ChaosConfig {
            corrupt_p: 1.0,
            ..ChaosConfig::honest()
        };
        let frame = b"{\"op\":\"status\"}\n";
        let mut s = ChaosStream::new(
            MemPipe {
                written: Vec::new(),
            },
            ChaosSchedule::new(cfg, 3),
        );
        match s.send_frame(frame).expect("send") {
            Hostility::Corrupt { offset, mask } => {
                let pipe = s.into_inner().expect("alive");
                assert_eq!(pipe.written.len(), frame.len());
                let diffs: Vec<usize> = (0..frame.len())
                    .filter(|&i| pipe.written[i] != frame[i])
                    .collect();
                assert_eq!(diffs, vec![offset]);
                assert_eq!(pipe.written[offset], frame[offset] ^ mask);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_writes_a_strict_prefix_then_drops() {
        let cfg = ChaosConfig {
            truncate_p: 1.0,
            ..ChaosConfig::honest()
        };
        let frame = b"{\"op\":\"status\"}\n";
        let mut s = ChaosStream::new(
            MemPipe {
                written: Vec::new(),
            },
            ChaosSchedule::new(cfg, 4),
        );
        match s.send_frame(frame).expect("send") {
            Hostility::Truncate { keep } => {
                assert!(keep < frame.len());
                assert!(!s.alive());
                assert_eq!(s.stats().truncations, 1);
            }
            other => panic!("expected Truncate, got {other:?}"),
        }
    }
}
