//! Resilience primitives for the PowerChop service layer.
//!
//! Long-lived services treat failure as the steady state: workers die,
//! clients stall mid-frame, downstream work wedges, and retries pile up
//! into synchronized bursts unless something breaks the symmetry. This
//! crate provides the small, dependency-free building blocks the daemon
//! and CLI use to keep serving through all of it — and, in the same
//! spirit as `powerchop-faults`, a *seeded* way to prove they work:
//!
//! - [`retry::RetryPolicy`] — capped exponential backoff with
//!   deterministic seeded jitter (SplitMix64 via [`powerchop_faults`]),
//!   so a batch of failures retries de-synchronized yet reproducibly.
//! - [`breaker::CircuitBreaker`] — a three-state (closed / open /
//!   half-open) typed state machine with trip and probe counters,
//!   driven by an explicit millisecond clock so every transition is
//!   unit-testable without sleeping.
//! - [`deadline::DeadlineBudget`] — one wall-clock budget decremented
//!   across queue wait, execution and retries, so retried work can
//!   never exceed the client's original deadline.
//! - [`restart::RestartTracker`] — bounded restart-rate accounting for
//!   worker supervision: respawn freely under the rate cap, latch a
//!   "storm" verdict past it so callers shed load instead of thrashing.
//! - [`chaos`] — a seeded socket-level chaos injector: per-frame
//!   hostility plans (delays, partial writes, mid-frame drops, byte
//!   corruption, resets) sampled deterministically from one `u64` seed,
//!   plus a [`chaos::ChaosStream`] wrapper that applies them to any
//!   `Read + Write` transport.
//!
//! Everything here takes time as an explicit argument and randomness
//! from a seed; nothing reads the wall clock or an entropy source on
//! its own. That is what lets `tests/chaos_soak.rs` replay an entire
//! fault storm bit-for-bit.
//!
//! See `DESIGN.md` §10 for the resilience model these primitives build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod chaos;
pub mod deadline;
pub mod restart;
pub mod retry;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use chaos::{ChaosConfig, ChaosPlan, ChaosSchedule, ChaosStats, ChaosStream, Hostility};
pub use deadline::DeadlineBudget;
pub use restart::{RestartPolicy, RestartTracker, RestartVerdict};
pub use retry::RetryPolicy;
