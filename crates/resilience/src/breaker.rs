//! A three-state circuit breaker driven by an explicit clock.
//!
//! The breaker protects a downstream resource (here: the worker pool)
//! from being hammered while it is failing. It is a classic closed /
//! open / half-open state machine, with two deliberate departures from
//! textbook implementations: time is passed in by the caller as a
//! millisecond logical clock (so tests never sleep and soak runs are
//! replayable), and every transition is counted (so the `/metrics`
//! endpoint and the `health` op can report trips and probes).

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures in the closed state that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing probes, in ms.
    pub cooldown_ms: u64,
    /// Consecutive probe successes in half-open required to close.
    pub probe_quota: u32,
}

impl BreakerConfig {
    /// Conservative defaults: trip after 5 consecutive failures, cool
    /// down for a second, close again after 2 clean probes.
    #[must_use]
    pub fn new(failure_threshold: u32, cooldown_ms: u64, probe_quota: u32) -> Self {
        BreakerConfig {
            failure_threshold: failure_threshold.max(1),
            cooldown_ms,
            probe_quota: probe_quota.max(1),
        }
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig::new(5, 1_000, 2)
    }
}

/// The externally visible breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are being counted.
    Closed,
    /// Requests are rejected until the cooldown elapses.
    Open,
    /// A limited number of probe requests are being let through.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for telemetry and the `health` op.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed normally (breaker closed).
    Allow,
    /// Proceed, but this request is a half-open probe.
    Probe,
    /// Reject: the breaker is open for another `retry_after_ms`.
    Reject {
        /// Milliseconds until the cooldown elapses and probes resume.
        retry_after_ms: u64,
    },
}

impl Admission {
    /// Whether the request should be executed at all.
    #[must_use]
    pub fn admitted(&self) -> bool {
        !matches!(self, Admission::Reject { .. })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Inner {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        until_ms: u64,
    },
    HalfOpen {
        probe_successes: u32,
        in_flight: u32,
    },
}

/// The breaker state machine. All methods take `now_ms`, a monotonic
/// millisecond clock supplied by the caller; the breaker itself never
/// reads time, which is what makes its transitions deterministic.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Inner,
    trips: u64,
    probes: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given configuration.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Inner::Closed {
                consecutive_failures: 0,
            },
            trips: 0,
            probes: 0,
        }
    }

    /// The current state, advancing open → half-open if the cooldown
    /// has elapsed at `now_ms`.
    pub fn state(&mut self, now_ms: u64) -> BreakerState {
        self.advance(now_ms);
        match self.inner {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Times the breaker has tripped (closed/half-open → open).
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Probe requests admitted while half-open.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Decides whether a request arriving at `now_ms` may proceed.
    ///
    /// While half-open, only one probe is admitted at a time: admitting
    /// a thundering herd of probes against a still-sick downstream
    /// defeats the point of the cooldown.
    pub fn admit(&mut self, now_ms: u64) -> Admission {
        self.advance(now_ms);
        match &mut self.inner {
            Inner::Closed { .. } => Admission::Allow,
            Inner::Open { until_ms } => Admission::Reject {
                retry_after_ms: until_ms.saturating_sub(now_ms),
            },
            Inner::HalfOpen { in_flight, .. } => {
                if *in_flight > 0 {
                    Admission::Reject { retry_after_ms: 0 }
                } else {
                    *in_flight += 1;
                    self.probes += 1;
                    Admission::Probe
                }
            }
        }
    }

    /// Records a successful request outcome at `now_ms`.
    pub fn record_success(&mut self, now_ms: u64) {
        self.advance(now_ms);
        match &mut self.inner {
            Inner::Closed {
                consecutive_failures,
            } => *consecutive_failures = 0,
            // A success while open can only be a straggler admitted
            // before the trip; it carries no fresh information.
            Inner::Open { .. } => {}
            Inner::HalfOpen {
                probe_successes,
                in_flight,
            } => {
                *in_flight = in_flight.saturating_sub(1);
                *probe_successes += 1;
                if *probe_successes >= self.config.probe_quota {
                    self.inner = Inner::Closed {
                        consecutive_failures: 0,
                    };
                }
            }
        }
    }

    /// Records a failed request outcome at `now_ms`.
    pub fn record_failure(&mut self, now_ms: u64) {
        self.advance(now_ms);
        match &mut self.inner {
            Inner::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.config.failure_threshold {
                    self.trip(now_ms);
                }
            }
            Inner::Open { .. } => {}
            // One failed probe re-opens immediately: half-open exists to
            // test the water, not to absorb another failure streak.
            Inner::HalfOpen { .. } => self.trip(now_ms),
        }
    }

    fn trip(&mut self, now_ms: u64) {
        self.trips += 1;
        self.inner = Inner::Open {
            until_ms: now_ms.saturating_add(self.config.cooldown_ms),
        };
    }

    fn advance(&mut self, now_ms: u64) {
        if let Inner::Open { until_ms } = self.inner {
            if now_ms >= until_ms {
                self.inner = Inner::HalfOpen {
                    probe_successes: 0,
                    in_flight: 0,
                };
            }
        }
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig::new(3, 100, 2))
    }

    #[test]
    fn stays_closed_under_scattered_failures() {
        let mut b = breaker();
        for t in 0..10 {
            b.record_failure(t);
            b.record_failure(t);
            b.record_success(t); // success resets the streak
        }
        assert_eq!(b.state(100), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn trips_after_threshold_and_rejects_with_retry_after() {
        let mut b = breaker();
        for t in 0..3 {
            assert!(b.admit(t).admitted());
            b.record_failure(t);
        }
        assert_eq!(b.state(3), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        match b.admit(50) {
            Admission::Reject { retry_after_ms } => assert_eq!(retry_after_ms, 52),
            other => panic!("expected Reject, got {other:?}"),
        }
    }

    #[test]
    fn cooldown_elapses_into_half_open_single_probe() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        // Cooldown started at t=2, so the breaker reopens at t=102.
        assert_eq!(b.state(101), BreakerState::Open);
        assert_eq!(b.state(102), BreakerState::HalfOpen);
        assert_eq!(b.admit(102), Admission::Probe);
        // Second concurrent request is shed while the probe is in flight.
        assert_eq!(b.admit(102), Admission::Reject { retry_after_ms: 0 });
        assert_eq!(b.probes(), 1);
    }

    #[test]
    fn probe_quota_closes_the_breaker() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        for t in [200, 210] {
            assert_eq!(b.admit(t), Admission::Probe);
            b.record_success(t);
        }
        assert_eq!(b.state(210), BreakerState::Closed);
        assert!(b.admit(210).admitted());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.admit(200), Admission::Probe);
        b.record_failure(200);
        assert_eq!(b.state(250), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // And it stays open for a full fresh cooldown.
        assert_eq!(b.state(299), BreakerState::Open);
        assert_eq!(b.state(300), BreakerState::HalfOpen);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::Open.label(), "open");
        assert_eq!(BreakerState::HalfOpen.label(), "half-open");
    }
}
