//! Bounded restart-rate accounting for worker supervision.
//!
//! Respawning a crashed worker is cheap and almost always right — until
//! the crash is deterministic, at which point respawning converts one
//! failure into a hot loop that burns a core and floods the log. The
//! [`RestartTracker`] draws that line: restarts inside a sliding window
//! are counted, and once the count exceeds the policy's cap the tracker
//! latches a *storm* verdict. Supervisors keep respawning (so work that
//! is already queued still resolves) but admission control starts
//! shedding new work with a typed 503 instead of feeding the loop.

/// Restart-rate policy: at most `max_restarts` restarts per sliding
/// `window_ms` window before the tracker declares a storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Width of the sliding window, in milliseconds.
    pub window_ms: u64,
    /// Restarts tolerated inside one window before giving up.
    pub max_restarts: u32,
}

impl RestartPolicy {
    /// A policy with the given window and cap (cap is at least 1).
    #[must_use]
    pub fn new(window_ms: u64, max_restarts: u32) -> Self {
        RestartPolicy {
            window_ms,
            max_restarts: max_restarts.max(1),
        }
    }
}

impl Default for RestartPolicy {
    /// Ten restarts in ten seconds: generous for transient crashes,
    /// quick to latch on a deterministic crash loop.
    fn default() -> Self {
        RestartPolicy::new(10_000, 10)
    }
}

/// The supervisor's verdict for one restart event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartVerdict {
    /// Under the rate cap: respawn and carry on.
    Respawn,
    /// Over the rate cap (or already latched): respawn so queued work
    /// resolves, but shed new admissions.
    Storm,
}

/// Sliding-window restart accounting. Like the breaker, it takes time
/// as an explicit `now_ms` argument so tests drive it with a logical
/// clock.
#[derive(Debug, Clone)]
pub struct RestartTracker {
    policy: RestartPolicy,
    recent_ms: Vec<u64>,
    total: u64,
    gave_up: bool,
}

impl RestartTracker {
    /// A fresh tracker under `policy`.
    #[must_use]
    pub fn new(policy: RestartPolicy) -> Self {
        RestartTracker {
            policy,
            recent_ms: Vec::new(),
            total: 0,
            gave_up: false,
        }
    }

    /// Records a restart at `now_ms` and returns the verdict.
    ///
    /// The storm verdict latches: once a tracker has given up it stays
    /// given up, because a supervisor that un-sheds the moment the
    /// window slides past would oscillate between serving and storming.
    pub fn record(&mut self, now_ms: u64) -> RestartVerdict {
        self.total += 1;
        let window = self.policy.window_ms;
        self.recent_ms
            .retain(|&t| now_ms.saturating_sub(t) <= window);
        self.recent_ms.push(now_ms);
        if self.recent_ms.len() > self.policy.max_restarts as usize {
            self.gave_up = true;
        }
        if self.gave_up {
            RestartVerdict::Storm
        } else {
            RestartVerdict::Respawn
        }
    }

    /// Lifetime restart count (including storm-mode respawns).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Restarts currently inside the sliding window (as of the last
    /// [`RestartTracker::record`] call).
    #[must_use]
    pub fn in_window(&self) -> usize {
        self.recent_ms.len()
    }

    /// Whether the tracker has latched the storm verdict.
    #[must_use]
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }
}

impl Default for RestartTracker {
    fn default() -> Self {
        RestartTracker::new(RestartPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respawns_under_the_cap() {
        let mut t = RestartTracker::new(RestartPolicy::new(1_000, 3));
        assert_eq!(t.record(0), RestartVerdict::Respawn);
        assert_eq!(t.record(100), RestartVerdict::Respawn);
        assert_eq!(t.record(200), RestartVerdict::Respawn);
        assert!(!t.gave_up());
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn storm_past_the_cap_and_latches() {
        let mut t = RestartTracker::new(RestartPolicy::new(1_000, 3));
        for now in [0, 10, 20] {
            assert_eq!(t.record(now), RestartVerdict::Respawn);
        }
        assert_eq!(t.record(30), RestartVerdict::Storm);
        assert!(t.gave_up());
        // Latched: even a restart far outside the window stays stormy.
        assert_eq!(t.record(1_000_000), RestartVerdict::Storm);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn window_slides() {
        let mut t = RestartTracker::new(RestartPolicy::new(1_000, 2));
        assert_eq!(t.record(0), RestartVerdict::Respawn);
        assert_eq!(t.record(500), RestartVerdict::Respawn);
        // The t=0 event has aged out by t=1500, so this is 2-in-window.
        assert_eq!(t.record(1_500), RestartVerdict::Respawn);
        assert_eq!(t.in_window(), 2);
        assert!(!t.gave_up());
    }

    #[test]
    fn cap_of_zero_is_clamped_to_one() {
        let mut t = RestartTracker::new(RestartPolicy::new(1_000, 0));
        assert_eq!(t.record(0), RestartVerdict::Respawn);
        assert_eq!(t.record(1), RestartVerdict::Storm);
    }
}
