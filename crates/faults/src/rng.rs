//! A tiny deterministic PRNG (SplitMix64).
//!
//! Every fault schedule, every property test and every synthetic
//! corruption payload in the workspace draws from this generator, so a
//! single `u64` seed reproduces an entire run bit-for-bit. SplitMix64 is
//! chosen for its trivial state (one word), full-period guarantee and
//! good avalanche behaviour — statistical perfection is not required,
//! reproducibility is.

/// A seedable, forkable PRNG with SplitMix64 output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds produce equal
    /// streams on every platform.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// The next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// A value uniform in `[0, n)`. Returns 0 when `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Lemire's multiply-shift; the slight modulo bias over a 64-bit
        // draw is far below anything these simulations can observe.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A value uniform in `[lo, hi)`; `lo` when the range is empty.
    pub fn gen_range_between(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.gen_range(hi.saturating_sub(lo))
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The raw generator state, for checkpointing. Combined with
    /// [`SimRng::from_state`] this resumes a stream mid-sequence.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at an exact stream position previously
    /// captured with [`SimRng::state`].
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        SimRng { state }
    }

    /// A statistically independent generator derived from this one and a
    /// stream label. Forking per subsystem keeps event streams stable:
    /// adding draws to one stream never shifts another.
    #[must_use]
    pub fn fork(&self, stream: u64) -> SimRng {
        SimRng {
            state: mix(self.state ^ mix(stream.wrapping_add(GOLDEN_GAMMA))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.gen_range(13) < 13);
        }
        assert_eq!(rng.gen_range(0), 0);
        assert_eq!(rng.gen_range(1), 0);
        for _ in 0..1000 {
            let v = rng.gen_range_between(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(rng.gen_range_between(5, 5), 5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::new(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn forked_streams_are_independent_of_parent_draws() {
        let parent = SimRng::new(5);
        let mut fork_a = parent.fork(1);
        let mut parent2 = SimRng::new(5);
        parent2.next_u64(); // extra draw on a clone of the parent
        let mut fork_b = SimRng::new(5).fork(1);
        // fork depends only on the parent seed and the label.
        assert_eq!(fork_a.next_u64(), fork_b.next_u64());
        let mut fork_c = parent.fork(2);
        assert_ne!(fork_a.next_u64(), fork_c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
