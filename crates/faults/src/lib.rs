//! Deterministic fault injection for the PowerChop reproduction.
//!
//! The paper's management layer worries about asynchronous interrupts,
//! context switches and table corruption disturbing phase decisions
//! (§II-A, §IV-C), but a clean simulation never exercises those paths.
//! This crate provides the disturbance half of the robustness story:
//!
//! - [`rng::SimRng`] — a tiny, seedable, forkable PRNG (SplitMix64) so
//!   every fault sequence is reproducible from a single `u64` seed,
//! - [`schedule::FaultSchedule`] — a cycle-driven schedule of fault
//!   events (interrupts, context switches, region-cache invalidation
//!   storms, PVT corruption/eviction, workload perturbation) sampled
//!   deterministically from per-kind mean intervals,
//! - [`check`] — a minimal seeded property-test harness used by the
//!   workspace's test suites (the environment has no registry access, so
//!   external property-testing crates cannot be used).
//!
//! The crate is intentionally dependency-free and knows nothing about
//! the simulator: consumers (the BT layer, the PowerChop manager, the
//! system loop) interpret [`schedule::FaultEvent`]s themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod rng;
pub mod schedule;

pub use rng::SimRng;
pub use schedule::{FaultConfig, FaultEvent, FaultKind, FaultSchedule, FaultStats};
