//! Seeded, reproducible fault schedules.
//!
//! A [`FaultSchedule`] is a cycle-driven event source: the simulation
//! loop polls it with the current cycle count and receives the fault
//! events that have come due. Arrival times are sampled per fault kind
//! from independent forked RNG streams, so enabling or re-rating one
//! kind never perturbs the arrival sequence of another — a property the
//! determinism tests rely on.
//!
//! The kinds model the disturbances PowerChop's management layer must
//! survive (paper §II-A, §IV-C): asynchronous interrupts whose handlers
//! steal cycles, context switches that flush phase-tracking state,
//! region-cache invalidation storms that force retranslation, corruption
//! or forced eviction of Policy Vector Table entries, and mid-phase
//! workload perturbations that stretch a phase's timing.

use crate::rng::SimRng;

/// The kinds of fault a schedule can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An asynchronous interrupt: the nucleus runs a handler for a
    /// sampled number of cycles, stalling the guest.
    AsyncInterrupt,
    /// A context switch: phase-tracking state (HTB window, armed
    /// profiling, interpreter hotness) is flushed and a switch cost is
    /// charged.
    ContextSwitch,
    /// A region-cache invalidation storm: a sampled fraction of resident
    /// translations is dropped, forcing re-interpretation and
    /// retranslation.
    RegionCacheInvalidation,
    /// Corruption of one PVT entry's stored policy (a soft-error model).
    PvtCorruption,
    /// Forced eviction of PVT entries (models table pressure from a
    /// co-runner or a hypervisor snapshot).
    PvtEviction,
    /// A mid-phase workload perturbation: an out-of-band stall burst
    /// (e.g. a DVFS transition or SMM excursion) that stretches the
    /// current window.
    WorkloadPerturbation,
}

impl FaultKind {
    /// All kinds, in a fixed order (stream labels and stats indices).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::AsyncInterrupt,
        FaultKind::ContextSwitch,
        FaultKind::RegionCacheInvalidation,
        FaultKind::PvtCorruption,
        FaultKind::PvtEviction,
        FaultKind::WorkloadPerturbation,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::AsyncInterrupt => 0,
            FaultKind::ContextSwitch => 1,
            FaultKind::RegionCacheInvalidation => 2,
            FaultKind::PvtCorruption => 3,
            FaultKind::PvtEviction => 4,
            FaultKind::WorkloadPerturbation => 5,
        }
    }

    /// Stable numeric code (the [`FaultKind::ALL`] index), used as the
    /// telemetry event payload so the flight recorder stays free of
    /// cross-crate types.
    #[must_use]
    pub fn code(self) -> u8 {
        self.index() as u8
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultKind::AsyncInterrupt => "interrupt",
            FaultKind::ContextSwitch => "context-switch",
            FaultKind::RegionCacheInvalidation => "region-invalidation",
            FaultKind::PvtCorruption => "pvt-corruption",
            FaultKind::PvtEviction => "pvt-eviction",
            FaultKind::WorkloadPerturbation => "perturbation",
        };
        f.write_str(name)
    }
}

/// One fault occurrence delivered to the simulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What kind of fault fired.
    pub kind: FaultKind,
    /// The cycle the fault was scheduled for (≤ the polled cycle).
    pub at_cycle: u64,
    /// Kind-specific random payload (handler length, victim selector,
    /// corruption bits, …). Consumers carve fields out of this word so
    /// the schedule stays simulator-agnostic.
    pub payload: u64,
}

/// Mean inter-arrival intervals (in core cycles) per fault kind;
/// `0` disables a kind. Actual arrivals are jittered uniformly in
/// `[mean/2, 3*mean/2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; every stream in the schedule forks from it.
    pub seed: u64,
    /// Mean cycles between asynchronous interrupts.
    pub interrupt_every: u64,
    /// Maximum interrupt-handler length in cycles (sampled uniformly in
    /// `[max/2, max]`).
    pub interrupt_handler_cycles: u64,
    /// Mean cycles between context switches.
    pub context_switch_every: u64,
    /// Cycles charged for one context switch (save/restore + refill).
    pub context_switch_cycles: u64,
    /// Mean cycles between region-cache invalidation storms.
    pub region_invalidate_every: u64,
    /// Fraction of resident translations dropped per storm (clamped to
    /// `[0, 1]`).
    pub region_invalidate_fraction: f64,
    /// Mean cycles between PVT-entry corruptions.
    pub pvt_corrupt_every: u64,
    /// Mean cycles between forced PVT evictions.
    pub pvt_evict_every: u64,
    /// Mean cycles between workload perturbations.
    pub perturb_every: u64,
    /// Maximum stall burst per perturbation, in cycles.
    pub perturb_stall_cycles: u64,
}

impl FaultConfig {
    /// The default active schedule: every kind enabled at rates chosen
    /// so a PowerChop run stays within a few percent of its clean
    /// runtime (the graceful-degradation acceptance bound is < 10 %
    /// end-to-end slowdown versus a clean full-power baseline).
    #[must_use]
    pub fn default_rates(seed: u64) -> Self {
        FaultConfig {
            seed,
            interrupt_every: 100_000,
            interrupt_handler_cycles: 1_000,
            context_switch_every: 2_000_000,
            context_switch_cycles: 5_000,
            region_invalidate_every: 4_000_000,
            region_invalidate_fraction: 0.25,
            pvt_corrupt_every: 1_000_000,
            pvt_evict_every: 2_000_000,
            perturb_every: 2_000_000,
            perturb_stall_cycles: 20_000,
        }
    }

    /// Everything disabled: a schedule that never fires (useful as a
    /// baseline with identical code paths).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            interrupt_every: 0,
            interrupt_handler_cycles: 0,
            context_switch_every: 0,
            context_switch_cycles: 0,
            region_invalidate_every: 0,
            region_invalidate_fraction: 0.0,
            pvt_corrupt_every: 0,
            pvt_evict_every: 0,
            perturb_every: 0,
            perturb_stall_cycles: 0,
        }
    }

    /// A pathological storm: every kind at 10× the default rate. Runs
    /// must still never panic and must converge to the fail-safe
    /// full-power policy; the slowdown bound does not apply.
    #[must_use]
    pub fn storm(seed: u64) -> Self {
        let d = FaultConfig::default_rates(seed);
        FaultConfig {
            interrupt_every: d.interrupt_every / 10,
            context_switch_every: d.context_switch_every / 10,
            region_invalidate_every: d.region_invalidate_every / 10,
            region_invalidate_fraction: 0.75,
            pvt_corrupt_every: d.pvt_corrupt_every / 10,
            pvt_evict_every: d.pvt_evict_every / 10,
            perturb_every: d.perturb_every / 10,
            ..d
        }
    }

    fn interval_of(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::AsyncInterrupt => self.interrupt_every,
            FaultKind::ContextSwitch => self.context_switch_every,
            FaultKind::RegionCacheInvalidation => self.region_invalidate_every,
            FaultKind::PvtCorruption => self.pvt_corrupt_every,
            FaultKind::PvtEviction => self.pvt_evict_every,
            FaultKind::WorkloadPerturbation => self.perturb_every,
        }
    }
}

/// Cumulative injected-fault counts, by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Asynchronous interrupts injected.
    pub interrupts: u64,
    /// Context switches injected.
    pub context_switches: u64,
    /// Region-cache invalidation storms injected.
    pub region_invalidations: u64,
    /// PVT corruptions injected.
    pub pvt_corruptions: u64,
    /// Forced PVT evictions injected.
    pub pvt_evictions: u64,
    /// Workload perturbations injected.
    pub perturbations: u64,
}

impl FaultStats {
    /// Total faults injected across kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.interrupts
            + self.context_switches
            + self.region_invalidations
            + self.pvt_corruptions
            + self.pvt_evictions
            + self.perturbations
    }

    fn bump(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::AsyncInterrupt => self.interrupts += 1,
            FaultKind::ContextSwitch => self.context_switches += 1,
            FaultKind::RegionCacheInvalidation => self.region_invalidations += 1,
            FaultKind::PvtCorruption => self.pvt_corruptions += 1,
            FaultKind::PvtEviction => self.pvt_evictions += 1,
            FaultKind::WorkloadPerturbation => self.perturbations += 1,
        }
    }
}

impl powerchop_telemetry::MetricSource for FaultStats {
    fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set("faults_interrupts_total", self.interrupts);
        reg.counter_set("faults_context_switches_total", self.context_switches);
        reg.counter_set(
            "faults_region_invalidations_total",
            self.region_invalidations,
        );
        reg.counter_set("faults_pvt_corruptions_total", self.pvt_corruptions);
        reg.counter_set("faults_pvt_evictions_total", self.pvt_evictions);
        reg.counter_set("faults_perturbations_total", self.perturbations);
        reg.counter_set("faults_injected_total", self.total());
    }
}

#[derive(Debug, Clone)]
struct Stream {
    kind: FaultKind,
    rng: SimRng,
    /// Next due cycle; `u64::MAX` when the kind is disabled.
    due: u64,
}

/// A deterministic, cycle-driven source of [`FaultEvent`]s.
///
/// # Examples
///
/// ```
/// use powerchop_faults::{FaultConfig, FaultSchedule};
///
/// let mut schedule = FaultSchedule::new(FaultConfig::default_rates(7));
/// let mut injected = 0;
/// for now in (0..2_000_000u64).step_by(10_000) {
///     while schedule.next_due(now).is_some() {
///         injected += 1;
///     }
/// }
/// assert!(injected > 0);
/// assert_eq!(schedule.stats().total(), injected);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    config: FaultConfig,
    streams: Vec<Stream>,
    /// Cached minimum of all `due` fields for a cheap not-due-yet check.
    next_min: u64,
    stats: FaultStats,
}

fn sample_interval(rng: &mut SimRng, mean: u64) -> u64 {
    // Uniform in [mean/2, 3*mean/2), floor 1: bounded jitter keeps the
    // long-run rate at `mean` without heavy tails that would make short
    // runs wildly seed-sensitive.
    (mean / 2 + rng.gen_range(mean)).max(1)
}

impl FaultSchedule {
    /// Builds the schedule, sampling each kind's first arrival.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        let streams: Vec<Stream> = FaultKind::ALL
            .iter()
            .map(|&kind| {
                let mut rng = SimRng::new(config.seed).fork(kind.index() as u64 + 1);
                let mean = config.interval_of(kind);
                let due = if mean == 0 {
                    u64::MAX
                } else {
                    sample_interval(&mut rng, mean)
                };
                Stream { kind, rng, due }
            })
            .collect();
        let next_min = streams.iter().map(|s| s.due).min().unwrap_or(u64::MAX);
        FaultSchedule {
            config,
            streams,
            next_min,
            stats: FaultStats::default(),
        }
    }

    /// The configuration the schedule was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether any kind is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.streams.iter().any(|s| s.due != u64::MAX)
    }

    /// Returns the next event due at or before `now`, or `None` when no
    /// fault is pending. Call in a loop to drain multiple kinds coming
    /// due in the same poll. O(1) when nothing is due.
    pub fn next_due(&mut self, now: u64) -> Option<FaultEvent> {
        if now < self.next_min {
            return None;
        }
        let mut fired = None;
        for s in &mut self.streams {
            if s.due <= now {
                let at_cycle = s.due;
                let payload = s.rng.next_u64();
                let mean = self.config.interval_of(s.kind);
                // Reschedule from `now`, not from the nominal due time:
                // a long uninterruptible stretch (e.g. one giant stall)
                // must not build up a burst of make-up events.
                s.due = now + sample_interval(&mut s.rng, mean);
                self.stats.bump(s.kind);
                fired = Some(FaultEvent {
                    kind: s.kind,
                    at_cycle,
                    payload,
                });
                break;
            }
        }
        self.next_min = self.streams.iter().map(|s| s.due).min().unwrap_or(u64::MAX);
        fired
    }

    /// Cumulative injected-fault counts.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Serializes the schedule's mutable state: each stream's RNG position
    /// and next due cycle (in [`FaultKind::ALL`] order) plus the injected
    /// counters. The [`FaultConfig`] is config-derived and not written.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        for s in &self.streams {
            w.put_u64(s.rng.state());
            w.put_u64(s.due);
        }
        for v in [
            self.stats.interrupts,
            self.stats.context_switches,
            self.stats.region_invalidations,
            self.stats.pvt_corruptions,
            self.stats.pvt_evictions,
            self.stats.perturbations,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores state written by [`FaultSchedule::snapshot_to`] into a
    /// schedule built from the same [`FaultConfig`], resuming every fault
    /// stream at its exact position.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        for s in &mut self.streams {
            s.rng = SimRng::from_state(r.take_u64()?);
            s.due = r.take_u64()?;
        }
        self.next_min = self.streams.iter().map(|s| s.due).min().unwrap_or(u64::MAX);
        self.stats.interrupts = r.take_u64()?;
        self.stats.context_switches = r.take_u64()?;
        self.stats.region_invalidations = r.take_u64()?;
        self.stats.pvt_corruptions = r.take_u64()?;
        self.stats.pvt_evictions = r.take_u64()?;
        self.stats.perturbations = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(schedule: &mut FaultSchedule, now: u64) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        while let Some(e) = schedule.next_due(now) {
            events.push(e);
        }
        events
    }

    #[test]
    fn quiet_schedule_never_fires() {
        let mut s = FaultSchedule::new(FaultConfig::quiet(1));
        assert!(!s.is_active());
        assert!(drain(&mut s, u64::MAX / 2).is_empty());
        assert_eq!(s.stats().total(), 0);
    }

    #[test]
    fn same_seed_same_event_sequence() {
        let make = || {
            let mut s = FaultSchedule::new(FaultConfig::default_rates(1234));
            let mut all = Vec::new();
            for now in (0..20_000_000u64).step_by(5_000) {
                all.extend(drain(&mut s, now));
            }
            all
        };
        let a = make();
        let b = make();
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut s = FaultSchedule::new(FaultConfig::default_rates(seed));
            (0..10_000_000u64)
                .step_by(1_000)
                .flat_map(|now| drain(&mut s, now))
                .collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut s = FaultSchedule::new(FaultConfig::default_rates(42));
        let horizon = 50_000_000u64;
        let mut interrupts = 0u64;
        for now in (0..horizon).step_by(1_000) {
            for e in drain(&mut s, now) {
                if e.kind == FaultKind::AsyncInterrupt {
                    interrupts += 1;
                }
            }
        }
        let expected = horizon / 100_000;
        assert!(
            interrupts > expected / 2 && interrupts < expected * 2,
            "{interrupts} interrupts over {horizon} cycles, expected ≈{expected}"
        );
    }

    #[test]
    fn disabling_one_kind_does_not_shift_others() {
        let collect = |cfg: FaultConfig| {
            let mut s = FaultSchedule::new(cfg);
            let mut v = Vec::new();
            for now in (0..10_000_000u64).step_by(1_000) {
                v.extend(
                    drain(&mut s, now)
                        .into_iter()
                        .filter(|e| e.kind == FaultKind::AsyncInterrupt),
                );
            }
            v
        };
        let full = collect(FaultConfig::default_rates(9));
        let no_switches = collect(FaultConfig {
            context_switch_every: 0,
            ..FaultConfig::default_rates(9)
        });
        assert_eq!(full, no_switches, "independent streams per kind");
    }

    #[test]
    fn storm_is_denser_than_default() {
        let count = |cfg: FaultConfig| {
            let mut s = FaultSchedule::new(cfg);
            for now in (0..5_000_000u64).step_by(1_000) {
                while s.next_due(now).is_some() {}
            }
            s.stats().total()
        };
        let d = count(FaultConfig::default_rates(3));
        let storm = count(FaultConfig::storm(3));
        assert!(storm > 5 * d, "storm {storm} vs default {d}");
    }

    #[test]
    fn events_are_stamped_at_or_before_poll_time() {
        let mut s = FaultSchedule::new(FaultConfig::default_rates(8));
        for now in (0..5_000_000u64).step_by(50_000) {
            for e in drain(&mut s, now) {
                assert!(e.at_cycle <= now);
            }
        }
    }
}
