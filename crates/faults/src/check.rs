//! A minimal seeded property-test harness.
//!
//! The build environment has no registry access, so `proptest` cannot be
//! used. This module provides the small slice of it the workspace needs:
//! run a property over many generated cases, each driven by a forked
//! [`SimRng`], and on failure report the case seed so the exact inputs
//! can be replayed with `cases_from`.
//!
//! There is no shrinking: cases are cheap and fully determined by
//! `(base seed, case index)`, so replaying a failure is a one-liner.
//!
//! # Examples
//!
//! ```
//! use powerchop_faults::check::cases;
//!
//! cases("addition commutes", 256, |rng| {
//!     let a = rng.gen_range(1_000_000);
//!     let b = rng.gen_range(1_000_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::SimRng;

/// The fixed base seed used by [`cases`]. Tests are deterministic from
/// build to build; change the seed locally to explore new inputs.
pub const DEFAULT_BASE_SEED: u64 = 0x1735_0A11_C0DE;

/// Runs `property` over `n` generated cases with the default base seed.
///
/// # Panics
///
/// Panics (failing the test) with the name, case index and replay seed
/// if the property panics for any case.
pub fn cases(name: &str, n: u64, property: impl FnMut(&mut SimRng)) {
    cases_from(name, DEFAULT_BASE_SEED, n, property);
}

/// Runs `property` over `n` cases forked from `base_seed`.
///
/// Case `i` sees an RNG forked as `SimRng::new(base_seed).fork(i)`, so a
/// reported failure replays with `cases_from(name, base_seed, i + 1, ..)`
/// or by forking the case index directly.
///
/// # Panics
///
/// Panics with a replay message if the property panics for any case.
pub fn cases_from(name: &str, base_seed: u64, n: u64, mut property: impl FnMut(&mut SimRng)) {
    let root = SimRng::new(base_seed);
    for case in 0..n {
        let mut rng = root.fork(case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property '{name}' failed at case {case}/{n} \
                 (replay: SimRng::new({base_seed:#x}).fork({case})): {msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u64;
        cases("counts cases", 64, |_| seen += 1);
        assert_eq!(seen, 64);
    }

    #[test]
    fn failing_property_reports_case() {
        let result = std::panic::catch_unwind(|| {
            cases_from("fails on big draw", 0xABCD, 512, |rng| {
                assert!(rng.gen_range(100) < 99, "drew 99");
            });
        });
        let payload = result.expect_err("property should fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("fails on big draw"), "{msg}");
        assert!(msg.contains("replay"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut v = Vec::new();
            cases("collect", 16, |rng| v.push(rng.next_u64()));
            v
        };
        assert_eq!(collect(), collect());
    }
}
