use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A multiply-shift hasher for page numbers. Every guest load and store
/// hits the page map, and the default SipHash dominates that path; page
/// numbers are already well-distributed small integers, so a single
/// Fibonacci multiply mixes plenty. Not DoS-resistant — irrelevant for a
/// simulator hashing its own address space. Snapshot encoding stays
/// deterministic because pages are serialized in sorted order, never in
/// map order.
#[derive(Debug, Default)]
pub(crate) struct PageHasher(u64);

impl Hasher for PageHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 page numbers are ever hashed, via write_u64.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        // The high bits carry the mixing; HashMap keeps the low bits.
        self.0.rotate_left(32)
    }
}

type PageMap = HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>;

/// A sparse, paged, byte-addressable 64-bit memory.
///
/// Pages are allocated on first touch (reads of untouched memory return
/// zero), so workloads may use widely separated address regions without
/// cost. This models guest physical memory; cache behaviour is layered on
/// top by `powerchop-uarch`.
///
/// # Examples
///
/// ```
/// use powerchop_gisa::Memory;
///
/// let mut mem = Memory::new();
/// assert_eq!(mem.read_u64(0xdead_beef), 0);
/// mem.write_u64(0xdead_beef, 42);
/// assert_eq!(mem.read_u64(0xdead_beef), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: PageMap,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of pages that have been touched by a write.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads a little-endian 64-bit word (any alignment).
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        // Fast path: the word lies within one page.
        let offset = (addr & OFFSET_MASK) as usize;
        if offset + 8 <= PAGE_SIZE {
            return match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => {
                    let mut bytes = [0u8; 8];
                    bytes.copy_from_slice(&page[offset..offset + 8]);
                    u64::from_le_bytes(bytes)
                }
                None => 0,
            };
        }
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian 64-bit word (any alignment).
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let offset = (addr & OFFSET_MASK) as usize;
        let bytes = value.to_le_bytes();
        if offset + 8 <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[offset..offset + 8].copy_from_slice(&bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads a 64-bit word and reinterprets it as an `i64`.
    #[must_use]
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes an `i64` as a 64-bit word.
    pub fn write_i64(&mut self, addr: u64, value: i64) {
        self.write_u64(addr, value as u64);
    }

    /// Writes a byte slice starting at `base`.
    pub fn write_bytes(&mut self, base: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(base.wrapping_add(i as u64), *b);
        }
    }

    /// Serializes every resident page (sorted by page number, so the
    /// encoding is deterministic regardless of hash-map iteration order).
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        let mut numbers: Vec<u64> = self.pages.keys().copied().collect();
        numbers.sort_unstable();
        w.put_usize(numbers.len());
        for n in numbers {
            w.put_u64(n);
            w.put_raw(&self.pages[&n][..]);
        }
    }

    /// Restores the memory image written by [`Memory::snapshot_to`],
    /// replacing all resident pages.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated or malformed.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        let count = r.take_usize()?;
        self.pages.clear();
        for _ in 0..count {
            let n = r.take_u64()?;
            let bytes = r.take_raw(PAGE_SIZE)?;
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page.copy_from_slice(bytes);
            self.pages.insert(n, page);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u64(u64::MAX - 16), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut mem = Memory::new();
        mem.write_u64(0x40, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(0x40), 0x0102_0304_0506_0708);
        // little-endian byte order
        assert_eq!(mem.read_u8(0x40), 0x08);
        assert_eq!(mem.read_u8(0x47), 0x01);
    }

    #[test]
    fn cross_page_word_round_trip() {
        let mut mem = Memory::new();
        let addr = (1 << 12) - 3; // straddles the first page boundary
        mem.write_u64(addr, 0xdead_beef_cafe_f00d);
        assert_eq!(mem.read_u64(addr), 0xdead_beef_cafe_f00d);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn i64_round_trip_preserves_sign() {
        let mut mem = Memory::new();
        mem.write_i64(0x100, -12345);
        assert_eq!(mem.read_i64(0x100), -12345);
    }

    #[test]
    fn write_bytes_places_each_byte() {
        let mut mem = Memory::new();
        mem.write_bytes(10, &[1, 2, 3]);
        assert_eq!(mem.read_u8(10), 1);
        assert_eq!(mem.read_u8(11), 2);
        assert_eq!(mem.read_u8(12), 3);
        assert_eq!(mem.read_u8(13), 0);
    }

    #[test]
    fn distinct_pages_do_not_alias() {
        let mut mem = Memory::new();
        mem.write_u64(0, 1);
        mem.write_u64(1 << 12, 2);
        mem.write_u64(1 << 20, 3);
        assert_eq!(mem.read_u64(0), 1);
        assert_eq!(mem.read_u64(1 << 12), 2);
        assert_eq!(mem.read_u64(1 << 20), 3);
        assert_eq!(mem.resident_pages(), 3);
    }
}
