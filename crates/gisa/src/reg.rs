use std::fmt;

use crate::GisaError;

/// Number of architectural integer registers.
pub(crate) const NUM_INT_REGS: u8 = 32;
/// Number of architectural floating-point registers.
pub(crate) const NUM_FP_REGS: u8 = 16;
/// Number of architectural vector registers.
pub(crate) const NUM_VEC_REGS: u8 = 16;

macro_rules! register_newtype {
    ($(#[$doc:meta])* $name:ident, $kind:literal, $max:expr, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u8);

        impl $name {
            /// Creates a register from an architectural index.
            ///
            /// # Errors
            ///
            /// Returns [`GisaError::InvalidRegister`] if `index` is outside
            /// the register file.
            pub fn new(index: u8) -> Result<Self, GisaError> {
                if index < $max {
                    Ok(Self(index))
                } else {
                    Err(GisaError::InvalidRegister { kind: $kind, index })
                }
            }

            /// Creates a register from an index the caller knows is in
            /// range, wrapping out-of-range indices back into the file.
            /// This makes compile-time-constant register choices total:
            /// emitters that pick registers from fixed pools use this
            /// instead of unwrapping [`Self::new`].
            #[must_use]
            pub const fn wrapping(index: u8) -> Self {
                Self(index % $max)
            }

            /// Returns the architectural index of this register.
            #[must_use]
            pub fn index(self) -> usize {
                usize::from(self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl TryFrom<u8> for $name {
            type Error = GisaError;

            fn try_from(index: u8) -> Result<Self, GisaError> {
                Self::new(index)
            }
        }
    };
}

register_newtype!(
    /// An integer register (`r0`–`r31`).
    Reg,
    "int",
    NUM_INT_REGS,
    "r"
);

register_newtype!(
    /// A floating-point register (`f0`–`f15`).
    FReg,
    "fp",
    NUM_FP_REGS,
    "f"
);

register_newtype!(
    /// A vector register (`v0`–`v15`), [`crate::VLEN`] 64-bit lanes wide.
    VReg,
    "vec",
    NUM_VEC_REGS,
    "v"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_indices_round_trip() {
        for i in 0..NUM_INT_REGS {
            assert_eq!(
                Reg::new(i).expect("register index in range").index(),
                usize::from(i)
            );
        }
        for i in 0..NUM_FP_REGS {
            assert_eq!(
                FReg::new(i).expect("register index in range").index(),
                usize::from(i)
            );
        }
        for i in 0..NUM_VEC_REGS {
            assert_eq!(
                VReg::new(i).expect("register index in range").index(),
                usize::from(i)
            );
        }
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        assert_eq!(
            Reg::new(32),
            Err(GisaError::InvalidRegister {
                kind: "int",
                index: 32
            })
        );
        assert_eq!(
            FReg::new(16),
            Err(GisaError::InvalidRegister {
                kind: "fp",
                index: 16
            })
        );
        assert_eq!(
            VReg::new(200),
            Err(GisaError::InvalidRegister {
                kind: "vec",
                index: 200
            })
        );
    }

    #[test]
    fn display_uses_assembler_names() {
        assert_eq!(
            Reg::new(7).expect("register index in range").to_string(),
            "r7"
        );
        assert_eq!(
            FReg::new(3).expect("register index in range").to_string(),
            "f3"
        );
        assert_eq!(
            VReg::new(15).expect("register index in range").to_string(),
            "v15"
        );
    }

    #[test]
    fn try_from_matches_new() {
        assert_eq!(Reg::try_from(5), Reg::new(5));
        assert!(Reg::try_from(40).is_err());
    }
}
