use std::fmt;

use crate::inst::{Cond, Inst};
use crate::reg::{FReg, Reg, VReg};
use crate::GisaError;

/// A guest program counter: an index into a [`Program`]'s instructions.
///
/// The binary-translation layer identifies translations by the lower 32 bits
/// of their head PC (paper §IV-B2), so the PC is 32 bits wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u32);

impl Pc {
    /// The PC of the instruction following this one (fall-through).
    #[must_use]
    pub fn next(self) -> Pc {
        Pc(self.0 + 1)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<Pc> for u32 {
    fn from(pc: Pc) -> u32 {
        pc.0
    }
}

/// A forward-referencable code location handed out by [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An executable guest program: instructions, an entry point, and an
/// initial data image.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    entry: Pc,
    data: Vec<(u64, Vec<u8>)>,
}

impl Program {
    /// The program's human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions (never true for built
    /// programs; see [`ProgramBuilder::build`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry program counter.
    #[must_use]
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// The instruction at `pc`, or `None` when `pc` is out of range.
    #[must_use]
    pub fn inst(&self, pc: Pc) -> Option<&Inst> {
        self.insts.get(pc.0 as usize)
    }

    /// All instructions, indexed by PC.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The initial data image as `(base address, bytes)` chunks.
    #[must_use]
    pub fn data(&self) -> &[(u64, Vec<u8>)] {
        &self.data
    }

    /// Writes the initial data image into `mem`.
    pub fn init_memory(&self, mem: &mut crate::Memory) {
        for (base, bytes) in &self.data {
            mem.write_bytes(*base, bytes);
        }
    }

    /// A deterministic 64-bit fingerprint of the program (name,
    /// instructions, entry and data image). Checkpoints record it so a
    /// resume against a different program is rejected instead of
    /// silently diverging.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let canonical = format!(
            "{}#{}#{:?}#{:?}",
            self.name, self.entry.0, self.insts, self.data
        );
        powerchop_checkpoint::fnv1a64(canonical.as_bytes())
    }
}

/// Assembler-style builder for [`Program`]s.
///
/// Instruction-emitting methods return `&mut Self` so straight-line code can
/// be chained; control flow uses [`Label`]s, which may be referenced before
/// they are bound.
///
/// # Examples
///
/// ```
/// use powerchop_gisa::{ProgramBuilder, Reg};
///
/// # fn main() -> Result<(), powerchop_gisa::GisaError> {
/// let r0 = Reg::new(0)?;
/// let mut b = ProgramBuilder::new("demo");
/// let skip = b.label();
/// b.li(r0, 1);
/// b.jmp(skip);
/// b.li(r0, 2); // skipped
/// b.bind(skip)?;
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: Vec<Option<Pc>>,
    patches: Vec<(usize, Label)>,
    data: Vec<(u64, Vec<u8>)>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..ProgramBuilder::default()
        }
    }

    /// The PC the next emitted instruction will occupy.
    #[must_use]
    pub fn here(&self) -> Pc {
        Pc(self.insts.len() as u32)
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`GisaError::RebindLabel`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), GisaError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(GisaError::RebindLabel(label.0));
        }
        *slot = Some(Pc(self.insts.len() as u32));
        Ok(())
    }

    /// Creates a label bound to the current position.
    pub fn bind_label(&mut self) -> Label {
        self.labels.push(Some(Pc(self.insts.len() as u32)));
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position; the first binding wins if
    /// it was already bound. Emitters that create a forward label and
    /// bind it exactly once use this total variant of
    /// [`ProgramBuilder::bind`].
    pub fn bind_here(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        if slot.is_none() {
            *slot = Some(Pc(self.insts.len() as u32));
        }
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Adds `bytes` at `base` to the initial data image.
    pub fn data(&mut self, base: u64, bytes: impl Into<Vec<u8>>) -> &mut Self {
        self.data.push((base, bytes.into()));
        self
    }

    /// Adds little-endian 64-bit `words` at `base` to the initial data image.
    pub fn data_u64s(&mut self, base: u64, words: &[u64]) -> &mut Self {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data(base, bytes)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`GisaError::EmptyProgram`] for an instruction-less program
    /// and [`GisaError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn build(mut self) -> Result<Program, GisaError> {
        if self.insts.is_empty() {
            return Err(GisaError::EmptyProgram);
        }
        for (index, label) in &self.patches {
            let target = self.labels[label.0].ok_or(GisaError::UnboundLabel(label.0))?;
            match &mut self.insts[*index] {
                Inst::Branch { target: t, .. }
                | Inst::Jmp { target: t }
                | Inst::Call { target: t } => *t = target,
                other => unreachable!("patch recorded for non-control instruction {other}"),
            }
        }
        Ok(Program {
            name: self.name,
            insts: self.insts,
            entry: Pc(0),
            data: self.data,
        })
    }

    fn patch_here(&mut self, label: Label) {
        self.patches.push((self.insts.len(), label));
    }
}

/// Generates a builder method that emits one instruction variant.
macro_rules! emit {
    ($(#[$doc:meta])* $method:ident ( $($arg:ident : $ty:ty),* ) => $variant:ident { $($field:ident : $value:expr),* }) => {
        $(#[$doc])*
        pub fn $method(&mut self, $($arg: $ty),*) -> &mut Self {
            self.inst(Inst::$variant { $($field: $value),* })
        }
    };
}

impl ProgramBuilder {
    emit!(/// Emits `li rd, imm`.
        li(rd: Reg, imm: i64) => Li { rd: rd, imm: imm });
    emit!(/// Emits `addi rd, rs, imm`.
        addi(rd: Reg, rs: Reg, imm: i64) => Addi { rd: rd, rs: rs, imm: imm });
    emit!(/// Emits `add rd, rs, rt`.
        add(rd: Reg, rs: Reg, rt: Reg) => Add { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `sub rd, rs, rt`.
        sub(rd: Reg, rs: Reg, rt: Reg) => Sub { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `mul rd, rs, rt`.
        mul(rd: Reg, rs: Reg, rt: Reg) => Mul { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `and rd, rs, rt`.
        and(rd: Reg, rs: Reg, rt: Reg) => And { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `or rd, rs, rt`.
        or(rd: Reg, rs: Reg, rt: Reg) => Or { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `xor rd, rs, rt`.
        xor(rd: Reg, rs: Reg, rt: Reg) => Xor { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `shl rd, rs, rt`.
        shl(rd: Reg, rs: Reg, rt: Reg) => Shl { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `shr rd, rs, rt`.
        shr(rd: Reg, rs: Reg, rt: Reg) => Shr { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `slt rd, rs, rt`.
        slt(rd: Reg, rs: Reg, rt: Reg) => Slt { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `rem rd, rs, rt`.
        rem(rd: Reg, rs: Reg, rt: Reg) => Rem { rd: rd, rs: rs, rt: rt });
    emit!(/// Emits `fli fd, imm`.
        fli(fd: FReg, imm: f64) => Fli { fd: fd, imm: imm });
    emit!(/// Emits `fadd fd, fs, ft`.
        fadd(fd: FReg, fs: FReg, ft: FReg) => Fadd { fd: fd, fs: fs, ft: ft });
    emit!(/// Emits `fmul fd, fs, ft`.
        fmul(fd: FReg, fs: FReg, ft: FReg) => Fmul { fd: fd, fs: fs, ft: ft });
    emit!(/// Emits `fmadd fd, fs, ft, fa`.
        fmadd(fd: FReg, fs: FReg, ft: FReg, fa: FReg) => Fmadd { fd: fd, fs: fs, ft: ft, fa: fa });
    emit!(/// Emits `fcvt fd, rs`.
        fcvt(fd: FReg, rs: Reg) => Fcvt { fd: fd, rs: rs });
    emit!(/// Emits `vadd vd, vs, vt`.
        vadd(vd: VReg, vs: VReg, vt: VReg) => Vadd { vd: vd, vs: vs, vt: vt });
    emit!(/// Emits `vmul vd, vs, vt`.
        vmul(vd: VReg, vs: VReg, vt: VReg) => Vmul { vd: vd, vs: vs, vt: vt });
    emit!(/// Emits `vmadd vd, vs, vt, va`.
        vmadd(vd: VReg, vs: VReg, vt: VReg, va: VReg) => Vmadd { vd: vd, vs: vs, vt: vt, va: va });
    emit!(/// Emits `vsplat vd, rs`.
        vsplat(vd: VReg, rs: Reg) => Vsplat { vd: vd, rs: rs });
    emit!(/// Emits `vredsum rd, vs`.
        vredsum(rd: Reg, vs: VReg) => Vredsum { rd: rd, vs: vs });
    emit!(/// Emits `vload vd, [rs+imm]`.
        vload(vd: VReg, rs: Reg, imm: i64) => Vload { vd: vd, rs: rs, imm: imm });
    emit!(/// Emits `vstore vs, [rs+imm]`.
        vstore(vs: VReg, rs: Reg, imm: i64) => Vstore { vs: vs, rs: rs, imm: imm });
    emit!(/// Emits `load rd, [rs+imm]`.
        load(rd: Reg, rs: Reg, imm: i64) => Load { rd: rd, rs: rs, imm: imm });
    emit!(/// Emits `store rs, [rbase+imm]`.
        store(rs: Reg, rbase: Reg, imm: i64) => Store { rs: rs, rbase: rbase, imm: imm });
    emit!(/// Emits `jr rs`.
        jr(rs: Reg) => Jr { rs: rs });

    /// Emits a conditional branch to `target`.
    pub fn branch(&mut self, cond: Cond, rs: Reg, rt: Reg, target: Label) -> &mut Self {
        self.patch_here(target);
        self.inst(Inst::Branch {
            cond,
            rs,
            rt,
            target: Pc(u32::MAX),
        })
    }

    /// Emits `beq rs, rt, target`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, target: Label) -> &mut Self {
        self.branch(Cond::Eq, rs, rt, target)
    }

    /// Emits `bne rs, rt, target`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, target: Label) -> &mut Self {
        self.branch(Cond::Ne, rs, rt, target)
    }

    /// Emits `blt rs, rt, target`.
    pub fn blt(&mut self, rs: Reg, rt: Reg, target: Label) -> &mut Self {
        self.branch(Cond::Lt, rs, rt, target)
    }

    /// Emits `bge rs, rt, target`.
    pub fn bge(&mut self, rs: Reg, rt: Reg, target: Label) -> &mut Self {
        self.branch(Cond::Ge, rs, rt, target)
    }

    /// Emits `jmp target`.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.patch_here(target);
        self.inst(Inst::Jmp {
            target: Pc(u32::MAX),
        })
    }

    /// Emits `call target`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.patch_here(target);
        self.inst(Inst::Call {
            target: Pc(u32::MAX),
        })
    }

    /// Emits `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Inst::Ret)
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.inst(Inst::Halt)
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i).expect("register index in range")
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(
            ProgramBuilder::new("x").build().unwrap_err(),
            GisaError::EmptyProgram
        );
    }

    #[test]
    fn forward_labels_resolve() {
        let mut b = ProgramBuilder::new("fwd");
        let end = b.label();
        b.jmp(end);
        b.nop();
        b.bind(end).unwrap();
        b.halt();
        let p = b.build().expect("test program is well-formed");
        assert_eq!(p.inst(Pc(0)), Some(&Inst::Jmp { target: Pc(2) }));
    }

    #[test]
    fn backward_labels_resolve() {
        let mut b = ProgramBuilder::new("bwd");
        let top = b.bind_label();
        b.addi(r(0), r(0), 1);
        b.blt(r(0), r(1), top);
        b.halt();
        let p = b.build().expect("test program is well-formed");
        match p.inst(Pc(1)) {
            Some(Inst::Branch { target, .. }) => assert_eq!(*target, Pc(0)),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new("unbound");
        let nowhere = b.label();
        b.jmp(nowhere);
        assert_eq!(b.build().unwrap_err(), GisaError::UnboundLabel(0));
    }

    #[test]
    fn rebinding_label_is_an_error() {
        let mut b = ProgramBuilder::new("rebind");
        let l = b.bind_label();
        b.nop();
        assert_eq!(b.bind(l).unwrap_err(), GisaError::RebindLabel(0));
    }

    #[test]
    fn data_image_round_trips_through_memory() {
        let mut b = ProgramBuilder::new("data");
        b.data_u64s(0x1000, &[1, 2, 3]);
        b.halt();
        let p = b.build().expect("test program is well-formed");
        let mut mem = crate::Memory::new();
        p.init_memory(&mut mem);
        assert_eq!(mem.read_u64(0x1000), 1);
        assert_eq!(mem.read_u64(0x1008), 2);
        assert_eq!(mem.read_u64(0x1010), 3);
    }

    #[test]
    fn here_tracks_emission() {
        let mut b = ProgramBuilder::new("here");
        assert_eq!(b.here(), Pc(0));
        b.nop().nop();
        assert_eq!(b.here(), Pc(2));
    }
}
