//! Guest ISA for the PowerChop reproduction.
//!
//! Hybrid processors (Transmeta Crusoe/Efficeon, NVIDIA Project Denver) run
//! all application software through a binary-translation (BT) layer that
//! consumes a *guest* ISA. This crate defines the guest ISA used throughout
//! the reproduction: a small register machine with scalar integer and
//! floating-point operations, SIMD vector operations, memory accesses and
//! control flow — enough surface to express workloads whose phase-level unit
//! criticality (VPU / BPU / MLC) mirrors the applications evaluated in the
//! paper.
//!
//! The crate provides:
//!
//! - [`Inst`] — the instruction set, and [`InstClass`] — the coarse classes
//!   the timing and power models key off,
//! - [`Program`] and [`ProgramBuilder`] — an assembler-style builder with
//!   labels, used by `powerchop-workloads` to write benchmarks,
//! - [`Cpu`] — architectural state plus single-step semantics ([`Cpu::step`]),
//! - [`Memory`] — a sparse, paged 64-bit memory.
//!
//! # Examples
//!
//! ```
//! use powerchop_gisa::{Cpu, Memory, ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), powerchop_gisa::GisaError> {
//! let mut b = ProgramBuilder::new("count-to-ten");
//! let r0 = Reg::new(0)?;
//! let r1 = Reg::new(1)?;
//! b.li(r0, 0).li(r1, 10);
//! let top = b.bind_label();
//! b.addi(r0, r0, 1);
//! b.blt(r0, r1, top);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut cpu = Cpu::new(&program);
//! let mut mem = Memory::new();
//! while !cpu.halted() {
//!     cpu.step(&program, &mut mem)?;
//! }
//! assert_eq!(cpu.int_reg(r0), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod cpu;
mod error;
mod inst;
mod mem;
mod program;
mod reg;

pub use cpu::{BranchOutcome, Cpu, MemAccess, StepInfo};
pub use error::GisaError;
pub use inst::{Cond, Inst, InstClass, VLEN};
pub use mem::Memory;
pub use program::{Label, Pc, Program, ProgramBuilder};
pub use reg::{FReg, Reg, VReg};
