use std::fmt;

use crate::program::Pc;
use crate::reg::{FReg, Reg, VReg};

/// Number of 64-bit lanes in an architectural vector register.
///
/// The microarchitecture may execute fewer lanes per cycle (the mobile core
/// in Table I has a 2-wide SIMD unit); that is a timing property modelled in
/// `powerchop-uarch`, not an architectural one.
pub const VLEN: usize = 4;

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if the operands are equal.
    Eq,
    /// Branch if the operands differ.
    Ne,
    /// Branch if the first operand is (signed) less than the second.
    Lt,
    /// Branch if the first operand is (signed) greater than or equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition on two integer operands.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// A guest-ISA instruction.
///
/// The ISA is a load/store register machine. All integer arithmetic is
/// two's-complement wrapping on 64 bits; floating point is IEEE `f64`;
/// vector operations act lane-wise on [`VLEN`] 64-bit integer lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
#[allow(missing_docs)] // field meanings are given by each variant's doc line
pub enum Inst {
    // ---- integer ----
    /// `rd <- imm`
    Li { rd: Reg, imm: i64 },
    /// `rd <- rs + imm`
    Addi { rd: Reg, rs: Reg, imm: i64 },
    /// `rd <- rs + rt`
    Add { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs - rt`
    Sub { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs * rt` (wrapping)
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs & rt`
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs | rt`
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs ^ rt`
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs << (rt & 63)`
    Shl { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs >> (rt & 63)` (arithmetic)
    Shr { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- (rs < rt) ? 1 : 0`
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs % rt` (0 when `rt == 0`)
    Rem { rd: Reg, rs: Reg, rt: Reg },

    // ---- floating point ----
    /// `fd <- imm`
    Fli { fd: FReg, imm: f64 },
    /// `fd <- fs + ft`
    Fadd { fd: FReg, fs: FReg, ft: FReg },
    /// `fd <- fs * ft`
    Fmul { fd: FReg, fs: FReg, ft: FReg },
    /// `fd <- fs * ft + fa` (fused multiply-add)
    Fmadd {
        fd: FReg,
        fs: FReg,
        ft: FReg,
        fa: FReg,
    },
    /// `fd <- (f64) rs`
    Fcvt { fd: FReg, rs: Reg },

    // ---- vector (SIMD) ----
    /// Lane-wise `vd <- vs + vt`.
    Vadd { vd: VReg, vs: VReg, vt: VReg },
    /// Lane-wise `vd <- vs * vt` (wrapping).
    Vmul { vd: VReg, vs: VReg, vt: VReg },
    /// Lane-wise `vd <- vs * vt + va` (wrapping multiply-add).
    Vmadd {
        vd: VReg,
        vs: VReg,
        vt: VReg,
        va: VReg,
    },
    /// Broadcast `rs` into every lane of `vd`.
    Vsplat { vd: VReg, rs: Reg },
    /// Horizontal sum of `vs` into `rd` (wrapping).
    Vredsum { rd: Reg, vs: VReg },
    /// Vector load of [`VLEN`] contiguous 64-bit lanes from `rs + imm`.
    Vload { vd: VReg, rs: Reg, imm: i64 },
    /// Vector store of [`VLEN`] contiguous 64-bit lanes to `rs + imm`.
    Vstore { vs: VReg, rs: Reg, imm: i64 },

    // ---- memory ----
    /// `rd <- mem[rs + imm]` (64-bit).
    Load { rd: Reg, rs: Reg, imm: i64 },
    /// `mem[rbase + imm] <- rs` (64-bit).
    Store { rs: Reg, rbase: Reg, imm: i64 },

    // ---- control flow ----
    /// Conditional branch to `target` when `cond(rs, rt)` holds.
    Branch {
        cond: Cond,
        rs: Reg,
        rt: Reg,
        target: Pc,
    },
    /// Unconditional jump to `target`.
    Jmp { target: Pc },
    /// Indirect jump to the address held in `rs` (interpreted as a `Pc`).
    Jr { rs: Reg },
    /// Direct call: pushes the return address and jumps to `target`.
    Call { target: Pc },
    /// Return to the most recent call site.
    Ret,
    /// Stop execution.
    Halt,
    /// No operation.
    Nop,
}

/// Coarse instruction classes used by the timing and power models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InstClass {
    /// Simple integer ALU operation.
    IntAlu,
    /// Integer multiply/remainder.
    IntMul,
    /// Floating-point add/convert.
    FpAlu,
    /// Floating-point multiply / fused multiply-add.
    FpMul,
    /// Vector arithmetic executed on the VPU.
    VecAlu,
    /// Vector memory access executed on the VPU + cache hierarchy.
    VecMem,
    /// Scalar load.
    Load,
    /// Scalar store.
    Store,
    /// Conditional branch (consults the BPU).
    Branch,
    /// Unconditional control transfer (jump/call/ret; uses the BTB only).
    Jump,
    /// Everything else (`nop`, `halt`).
    Other,
}

impl InstClass {
    /// Whether this class executes on the vector processing unit.
    #[must_use]
    pub fn uses_vpu(self) -> bool {
        matches!(self, InstClass::VecAlu | InstClass::VecMem)
    }

    /// Whether this class accesses data memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store | InstClass::VecMem)
    }
}

impl Inst {
    /// Returns the coarse class of this instruction.
    #[must_use]
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Li { .. }
            | Inst::Addi { .. }
            | Inst::Add { .. }
            | Inst::Sub { .. }
            | Inst::And { .. }
            | Inst::Or { .. }
            | Inst::Xor { .. }
            | Inst::Shl { .. }
            | Inst::Shr { .. }
            | Inst::Slt { .. } => InstClass::IntAlu,
            Inst::Mul { .. } | Inst::Rem { .. } => InstClass::IntMul,
            Inst::Fli { .. } | Inst::Fadd { .. } | Inst::Fcvt { .. } => InstClass::FpAlu,
            Inst::Fmul { .. } | Inst::Fmadd { .. } => InstClass::FpMul,
            Inst::Vadd { .. }
            | Inst::Vmul { .. }
            | Inst::Vmadd { .. }
            | Inst::Vsplat { .. }
            | Inst::Vredsum { .. } => InstClass::VecAlu,
            Inst::Vload { .. } | Inst::Vstore { .. } => InstClass::VecMem,
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Branch { .. } => InstClass::Branch,
            Inst::Jmp { .. } | Inst::Jr { .. } | Inst::Call { .. } | Inst::Ret => InstClass::Jump,
            Inst::Halt | Inst::Nop => InstClass::Other,
        }
    }

    /// Whether this instruction ends a basic block (any control transfer
    /// or `halt`).
    #[must_use]
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jmp { .. }
                | Inst::Jr { .. }
                | Inst::Call { .. }
                | Inst::Ret
                | Inst::Halt
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Addi { rd, rs, imm } => write!(f, "addi {rd}, {rs}, {imm}"),
            Inst::Add { rd, rs, rt } => write!(f, "add {rd}, {rs}, {rt}"),
            Inst::Sub { rd, rs, rt } => write!(f, "sub {rd}, {rs}, {rt}"),
            Inst::Mul { rd, rs, rt } => write!(f, "mul {rd}, {rs}, {rt}"),
            Inst::And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Inst::Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Inst::Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Inst::Shl { rd, rs, rt } => write!(f, "shl {rd}, {rs}, {rt}"),
            Inst::Shr { rd, rs, rt } => write!(f, "shr {rd}, {rs}, {rt}"),
            Inst::Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Inst::Rem { rd, rs, rt } => write!(f, "rem {rd}, {rs}, {rt}"),
            Inst::Fli { fd, imm } => write!(f, "fli {fd}, {imm}"),
            Inst::Fadd { fd, fs, ft } => write!(f, "fadd {fd}, {fs}, {ft}"),
            Inst::Fmul { fd, fs, ft } => write!(f, "fmul {fd}, {fs}, {ft}"),
            Inst::Fmadd { fd, fs, ft, fa } => write!(f, "fmadd {fd}, {fs}, {ft}, {fa}"),
            Inst::Fcvt { fd, rs } => write!(f, "fcvt {fd}, {rs}"),
            Inst::Vadd { vd, vs, vt } => write!(f, "vadd {vd}, {vs}, {vt}"),
            Inst::Vmul { vd, vs, vt } => write!(f, "vmul {vd}, {vs}, {vt}"),
            Inst::Vmadd { vd, vs, vt, va } => write!(f, "vmadd {vd}, {vs}, {vt}, {va}"),
            Inst::Vsplat { vd, rs } => write!(f, "vsplat {vd}, {rs}"),
            Inst::Vredsum { rd, vs } => write!(f, "vredsum {rd}, {vs}"),
            Inst::Vload { vd, rs, imm } => write!(f, "vload {vd}, [{rs}+{imm}]"),
            Inst::Vstore { vs, rs, imm } => write!(f, "vstore {vs}, [{rs}+{imm}]"),
            Inst::Load { rd, rs, imm } => write!(f, "load {rd}, [{rs}+{imm}]"),
            Inst::Store { rs, rbase, imm } => write!(f, "store {rs}, [{rbase}+{imm}]"),
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                write!(f, "b{cond} {rs}, {rt}, {target}")
            }
            Inst::Jmp { target } => write!(f, "jmp {target}"),
            Inst::Jr { rs } => write!(f, "jr {rs}"),
            Inst::Call { target } => write!(f, "call {target}"),
            Inst::Ret => f.write_str("ret"),
            Inst::Halt => f.write_str("halt"),
            Inst::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i).expect("register index in range")
    }

    #[test]
    fn cond_eval_covers_all_conditions() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(!Cond::Ne.eval(3, 3));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(!Cond::Lt.eval(0, 0));
        assert!(Cond::Ge.eval(0, 0));
        assert!(!Cond::Ge.eval(-5, 0));
    }

    #[test]
    fn class_assigns_vector_ops_to_vpu() {
        let v = VReg::new(0).expect("register index in range");
        assert_eq!(
            Inst::Vadd {
                vd: v,
                vs: v,
                vt: v
            }
            .class(),
            InstClass::VecAlu
        );
        assert_eq!(
            Inst::Vload {
                vd: v,
                rs: r(0),
                imm: 0
            }
            .class(),
            InstClass::VecMem
        );
        assert!(Inst::Vadd {
            vd: v,
            vs: v,
            vt: v
        }
        .class()
        .uses_vpu());
        assert!(!Inst::Add {
            rd: r(0),
            rs: r(1),
            rt: r(2)
        }
        .class()
        .uses_vpu());
    }

    #[test]
    fn mem_classes_are_memory_ops() {
        assert!(InstClass::Load.is_mem());
        assert!(InstClass::Store.is_mem());
        assert!(InstClass::VecMem.is_mem());
        assert!(!InstClass::Branch.is_mem());
    }

    #[test]
    fn control_flow_ends_blocks() {
        assert!(Inst::Halt.ends_block());
        assert!(Inst::Ret.ends_block());
        assert!(Inst::Jmp { target: Pc(0) }.ends_block());
        assert!(!Inst::Nop.ends_block());
        assert!(!Inst::Li { rd: r(0), imm: 1 }.ends_block());
    }

    #[test]
    fn display_is_assembler_like() {
        let i = Inst::Branch {
            cond: Cond::Lt,
            rs: r(1),
            rt: r(2),
            target: Pc(42),
        };
        assert_eq!(i.to_string(), "blt r1, r2, @42");
        assert_eq!(Inst::Nop.to_string(), "nop");
    }
}
