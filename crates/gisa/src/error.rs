use std::error::Error;
use std::fmt;

/// Errors produced while building or executing guest-ISA programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GisaError {
    /// A register index was outside the architectural register file.
    InvalidRegister {
        /// The register file that was indexed (`"int"`, `"fp"` or `"vec"`).
        kind: &'static str,
        /// The out-of-range index.
        index: u8,
    },
    /// A label was referenced by a branch but never bound to a location.
    UnboundLabel(usize),
    /// A label was bound more than once.
    RebindLabel(usize),
    /// The program counter left the program's instruction range.
    PcOutOfRange {
        /// The offending program counter.
        pc: u64,
        /// The number of instructions in the program.
        len: usize,
    },
    /// A `ret` executed with an empty call stack.
    ReturnWithoutCall,
    /// The program contains no instructions.
    EmptyProgram,
}

impl fmt::Display for GisaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GisaError::InvalidRegister { kind, index } => {
                write!(f, "invalid {kind} register index {index}")
            }
            GisaError::UnboundLabel(id) => write!(f, "label {id} referenced but never bound"),
            GisaError::RebindLabel(id) => write!(f, "label {id} bound more than once"),
            GisaError::PcOutOfRange { pc, len } => {
                write!(
                    f,
                    "program counter {pc} outside program of {len} instructions"
                )
            }
            GisaError::ReturnWithoutCall => write!(f, "ret executed with an empty call stack"),
            GisaError::EmptyProgram => write!(f, "program contains no instructions"),
        }
    }
}

impl Error for GisaError {}
