use crate::inst::{Inst, InstClass, VLEN};
use crate::mem::Memory;
use crate::program::{Pc, Program};
use crate::reg::{FReg, Reg, VReg};
use crate::GisaError;

/// A data-memory access performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address of the first byte accessed.
    pub addr: u64,
    /// Access size in bytes (8 for scalar, `8 * VLEN` for vector).
    pub size: u32,
    /// Whether the access writes memory.
    pub is_store: bool,
}

/// The resolved outcome of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The PC control flow actually continued at.
    pub next_pc: Pc,
}

/// Everything the timing model needs to know about one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepInfo {
    /// PC of the executed instruction.
    pub pc: Pc,
    /// The executed instruction.
    pub inst: Inst,
    /// Coarse class (cached from [`Inst::class`]).
    pub class: InstClass,
    /// PC of the next instruction to execute.
    pub next_pc: Pc,
    /// Data-memory access, if any.
    pub mem: Option<MemAccess>,
    /// Conditional-branch outcome, if the instruction was a branch.
    pub branch: Option<BranchOutcome>,
}

/// Architectural CPU state: register files, PC and call stack.
///
/// [`Cpu::step`] implements the full guest-ISA semantics; both the BT
/// interpreter and translated-code execution in `powerchop-bt` are built on
/// it, so interpreted and translated runs are architecturally identical.
#[derive(Debug, Clone, PartialEq)]
pub struct Cpu {
    int: [i64; 32],
    fp: [f64; 16],
    vec: [[i64; VLEN]; 16],
    pc: Pc,
    call_stack: Vec<Pc>,
    halted: bool,
    retired: u64,
}

impl Cpu {
    /// Creates a CPU with zeroed registers, positioned at the program entry.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        Cpu {
            int: [0; 32],
            fp: [0.0; 16],
            vec: [[0; VLEN]; 16],
            pc: program.entry(),
            call_stack: Vec::new(),
            halted: false,
            retired: 0,
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Whether a `halt` has been executed.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an integer register.
    #[must_use]
    pub fn int_reg(&self, r: Reg) -> i64 {
        self.int[r.index()]
    }

    /// Writes an integer register.
    pub fn set_int_reg(&mut self, r: Reg, value: i64) {
        self.int[r.index()] = value;
    }

    /// Reads a floating-point register.
    #[must_use]
    pub fn fp_reg(&self, f: FReg) -> f64 {
        self.fp[f.index()]
    }

    /// Reads a vector register.
    #[must_use]
    pub fn vec_reg(&self, v: VReg) -> [i64; VLEN] {
        self.vec[v.index()]
    }

    /// Serializes the complete architectural state (registers, PC, call
    /// stack, halt flag, retired count) for a run checkpoint.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        for v in self.int {
            w.put_i64(v);
        }
        for v in self.fp {
            w.put_f64(v);
        }
        for lanes in self.vec {
            for v in lanes {
                w.put_i64(v);
            }
        }
        w.put_u32(self.pc.0);
        w.put_usize(self.call_stack.len());
        for pc in &self.call_stack {
            w.put_u32(pc.0);
        }
        w.put_bool(self.halted);
        w.put_u64(self.retired);
    }

    /// Restores the architectural state written by [`Cpu::snapshot_to`],
    /// replacing this CPU's state in place.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated or malformed.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        for v in &mut self.int {
            *v = r.take_i64()?;
        }
        for v in &mut self.fp {
            *v = r.take_f64()?;
        }
        for lanes in &mut self.vec {
            for v in lanes {
                *v = r.take_i64()?;
            }
        }
        self.pc = Pc(r.take_u32()?);
        let depth = r.take_usize()?;
        self.call_stack.clear();
        for _ in 0..depth {
            self.call_stack.push(Pc(r.take_u32()?));
        }
        self.halted = r.take_bool()?;
        self.retired = r.take_u64()?;
        Ok(())
    }

    /// BT-backend hook: the base pointer of the integer register file and
    /// the byte offset from it to the floating-point register file. The
    /// offset is a property of this struct's layout, so native code
    /// compiled against one `Cpu` instance addresses any instance's
    /// registers given that instance's integer base pointer.
    ///
    /// The pointers are only valid while this `Cpu` is not moved; the BT
    /// layer re-derives them on every translated-trace execution.
    /// BT-backend hook: the byte offset from the integer register file to
    /// the floating-point register file, as a pure layout constant usable
    /// without a `Cpu` instance (the JIT compiler bakes it into generated
    /// code before any guest state exists).
    #[doc(hidden)]
    #[must_use]
    pub fn jit_fp_delta() -> isize {
        (std::mem::offset_of!(Cpu, fp) as isize) - (std::mem::offset_of!(Cpu, int) as isize)
    }

    #[doc(hidden)]
    #[must_use]
    pub fn jit_reg_layout(&mut self) -> (*mut i64, isize) {
        let int_base = self.int.as_mut_ptr();
        let fp_base = self.fp.as_mut_ptr();
        (int_base, (fp_base as isize) - (int_base as isize))
    }

    /// BT-backend hook: sets the program counter. Native trace code only
    /// executes instructions whose successor is statically known, so the
    /// value written is always the PC the interpreter would have reached.
    #[doc(hidden)]
    pub fn jit_set_pc(&mut self, pc: Pc) {
        self.pc = pc;
    }

    /// BT-backend hook: credits `n` retired instructions in one batch.
    /// Used for natively-executed instructions, whose per-instruction
    /// retirement the interpreter would have counted one at a time;
    /// nothing observes the counter mid-trace, so the batched sum is
    /// indistinguishable.
    #[doc(hidden)]
    pub fn jit_add_retired(&mut self, n: u64) {
        self.retired += n;
    }

    /// Executes the instruction at the current PC and advances.
    ///
    /// Executing while halted is a no-op that returns the `halt` step again.
    ///
    /// # Errors
    ///
    /// Returns [`GisaError::PcOutOfRange`] if the PC has left the program
    /// (e.g. by falling off the end, or via a wild `jr`), and
    /// [`GisaError::ReturnWithoutCall`] for an unbalanced `ret`.
    pub fn step(&mut self, program: &Program, mem: &mut Memory) -> Result<StepInfo, GisaError> {
        let pc = self.pc;
        if self.halted {
            return Ok(Self::halted_step(pc));
        }
        let inst = *program.inst(pc).ok_or(GisaError::PcOutOfRange {
            pc: u64::from(pc.0),
            len: program.len(),
        })?;
        self.exec(inst, pc, mem)
    }

    /// Executes a pre-decoded instruction without re-fetching it from the
    /// program. The caller guarantees `inst` is the instruction at the
    /// current PC (the BT layer's translations cache decoded instructions
    /// keyed by PC and verify the PC before each step); behaviour is then
    /// identical to [`Cpu::step`].
    ///
    /// # Errors
    ///
    /// Returns [`GisaError::ReturnWithoutCall`] for an unbalanced `ret`.
    #[inline]
    pub fn step_prefetched(&mut self, inst: Inst, mem: &mut Memory) -> Result<StepInfo, GisaError> {
        let pc = self.pc;
        if self.halted {
            return Ok(Self::halted_step(pc));
        }
        self.exec(inst, pc, mem)
    }

    fn halted_step(pc: Pc) -> StepInfo {
        StepInfo {
            pc,
            inst: Inst::Halt,
            class: InstClass::Other,
            next_pc: pc,
            mem: None,
            branch: None,
        }
    }

    #[inline]
    fn exec(&mut self, inst: Inst, pc: Pc, mem: &mut Memory) -> Result<StepInfo, GisaError> {
        let class = inst.class();
        let mut next_pc = pc.next();
        let mut mem_access = None;
        let mut branch = None;

        match inst {
            Inst::Li { rd, imm } => self.int[rd.index()] = imm,
            Inst::Addi { rd, rs, imm } => {
                self.int[rd.index()] = self.int[rs.index()].wrapping_add(imm);
            }
            Inst::Add { rd, rs, rt } => {
                self.int[rd.index()] = self.int[rs.index()].wrapping_add(self.int[rt.index()]);
            }
            Inst::Sub { rd, rs, rt } => {
                self.int[rd.index()] = self.int[rs.index()].wrapping_sub(self.int[rt.index()]);
            }
            Inst::Mul { rd, rs, rt } => {
                self.int[rd.index()] = self.int[rs.index()].wrapping_mul(self.int[rt.index()]);
            }
            Inst::And { rd, rs, rt } => {
                self.int[rd.index()] = self.int[rs.index()] & self.int[rt.index()];
            }
            Inst::Or { rd, rs, rt } => {
                self.int[rd.index()] = self.int[rs.index()] | self.int[rt.index()];
            }
            Inst::Xor { rd, rs, rt } => {
                self.int[rd.index()] = self.int[rs.index()] ^ self.int[rt.index()];
            }
            Inst::Shl { rd, rs, rt } => {
                self.int[rd.index()] =
                    self.int[rs.index()].wrapping_shl(self.int[rt.index()] as u32 & 63);
            }
            Inst::Shr { rd, rs, rt } => {
                self.int[rd.index()] =
                    self.int[rs.index()].wrapping_shr(self.int[rt.index()] as u32 & 63);
            }
            Inst::Slt { rd, rs, rt } => {
                self.int[rd.index()] = i64::from(self.int[rs.index()] < self.int[rt.index()]);
            }
            Inst::Rem { rd, rs, rt } => {
                let divisor = self.int[rt.index()];
                self.int[rd.index()] = if divisor == 0 {
                    0
                } else {
                    self.int[rs.index()].wrapping_rem(divisor)
                };
            }
            Inst::Fli { fd, imm } => self.fp[fd.index()] = imm,
            Inst::Fadd { fd, fs, ft } => {
                self.fp[fd.index()] = self.fp[fs.index()] + self.fp[ft.index()];
            }
            Inst::Fmul { fd, fs, ft } => {
                self.fp[fd.index()] = self.fp[fs.index()] * self.fp[ft.index()];
            }
            Inst::Fmadd { fd, fs, ft, fa } => {
                self.fp[fd.index()] =
                    self.fp[fs.index()].mul_add(self.fp[ft.index()], self.fp[fa.index()]);
            }
            Inst::Fcvt { fd, rs } => self.fp[fd.index()] = self.int[rs.index()] as f64,
            Inst::Vadd { vd, vs, vt } => {
                let (a, b) = (self.vec[vs.index()], self.vec[vt.index()]);
                for (lane, d) in self.vec[vd.index()].iter_mut().enumerate() {
                    *d = a[lane].wrapping_add(b[lane]);
                }
            }
            Inst::Vmul { vd, vs, vt } => {
                let (a, b) = (self.vec[vs.index()], self.vec[vt.index()]);
                for (lane, d) in self.vec[vd.index()].iter_mut().enumerate() {
                    *d = a[lane].wrapping_mul(b[lane]);
                }
            }
            Inst::Vmadd { vd, vs, vt, va } => {
                let (a, b, c) = (
                    self.vec[vs.index()],
                    self.vec[vt.index()],
                    self.vec[va.index()],
                );
                for (lane, d) in self.vec[vd.index()].iter_mut().enumerate() {
                    *d = a[lane].wrapping_mul(b[lane]).wrapping_add(c[lane]);
                }
            }
            Inst::Vsplat { vd, rs } => {
                self.vec[vd.index()] = [self.int[rs.index()]; VLEN];
            }
            Inst::Vredsum { rd, vs } => {
                self.int[rd.index()] = self.vec[vs.index()]
                    .iter()
                    .fold(0i64, |acc, lane| acc.wrapping_add(*lane));
            }
            Inst::Vload { vd, rs, imm } => {
                let base = (self.int[rs.index()].wrapping_add(imm)) as u64;
                for (lane, d) in self.vec[vd.index()].iter_mut().enumerate() {
                    *d = mem.read_i64(base.wrapping_add(8 * lane as u64));
                }
                mem_access = Some(MemAccess {
                    addr: base,
                    size: 8 * VLEN as u32,
                    is_store: false,
                });
            }
            Inst::Vstore { vs, rs, imm } => {
                let base = (self.int[rs.index()].wrapping_add(imm)) as u64;
                for (lane, value) in self.vec[vs.index()].iter().enumerate() {
                    mem.write_i64(base.wrapping_add(8 * lane as u64), *value);
                }
                mem_access = Some(MemAccess {
                    addr: base,
                    size: 8 * VLEN as u32,
                    is_store: true,
                });
            }
            Inst::Load { rd, rs, imm } => {
                let addr = (self.int[rs.index()].wrapping_add(imm)) as u64;
                self.int[rd.index()] = mem.read_i64(addr);
                mem_access = Some(MemAccess {
                    addr,
                    size: 8,
                    is_store: false,
                });
            }
            Inst::Store { rs, rbase, imm } => {
                let addr = (self.int[rbase.index()].wrapping_add(imm)) as u64;
                mem.write_i64(addr, self.int[rs.index()]);
                mem_access = Some(MemAccess {
                    addr,
                    size: 8,
                    is_store: true,
                });
            }
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                let taken = cond.eval(self.int[rs.index()], self.int[rt.index()]);
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchOutcome { taken, next_pc });
            }
            Inst::Jmp { target } => next_pc = target,
            Inst::Jr { rs } => next_pc = Pc(self.int[rs.index()] as u32),
            Inst::Call { target } => {
                self.call_stack.push(pc.next());
                next_pc = target;
            }
            Inst::Ret => {
                next_pc = self.call_stack.pop().ok_or(GisaError::ReturnWithoutCall)?;
            }
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Inst::Nop => {}
        }

        self.pc = next_pc;
        self.retired += 1;
        Ok(StepInfo {
            pc,
            inst,
            class,
            next_pc,
            mem: mem_access,
            branch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn r(i: u8) -> Reg {
        Reg::new(i).expect("register index in range")
    }
    fn f(i: u8) -> FReg {
        FReg::new(i).expect("register index in range")
    }
    fn v(i: u8) -> VReg {
        VReg::new(i).expect("register index in range")
    }

    fn run(b: ProgramBuilder) -> (Cpu, Memory) {
        let p = b.build().expect("test program is well-formed");
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        p.init_memory(&mut mem);
        for _ in 0..100_000 {
            if cpu.halted() {
                break;
            }
            cpu.step(&p, &mut mem)
                .expect("test program executes cleanly");
        }
        assert!(cpu.halted(), "program did not halt");
        (cpu, mem)
    }

    #[test]
    fn integer_arithmetic_semantics() {
        let mut b = ProgramBuilder::new("int");
        b.li(r(1), 6).li(r(2), 7);
        b.mul(r(3), r(1), r(2));
        b.sub(r(4), r(3), r(1));
        b.addi(r(5), r(4), -1);
        b.li(r(6), 10).rem(r(7), r(3), r(6));
        b.halt();
        let (cpu, _) = run(b);
        assert_eq!(cpu.int_reg(r(3)), 42);
        assert_eq!(cpu.int_reg(r(4)), 36);
        assert_eq!(cpu.int_reg(r(5)), 35);
        assert_eq!(cpu.int_reg(r(7)), 2);
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        let mut b = ProgramBuilder::new("wrap");
        b.li(r(1), i64::MAX).li(r(2), 1);
        b.add(r(3), r(1), r(2));
        b.mul(r(4), r(1), r(1));
        b.halt();
        let (cpu, _) = run(b);
        assert_eq!(cpu.int_reg(r(3)), i64::MIN);
    }

    #[test]
    fn rem_by_zero_yields_zero() {
        let mut b = ProgramBuilder::new("rem0");
        b.li(r(1), 5).li(r(2), 0).rem(r(3), r(1), r(2)).halt();
        let (cpu, _) = run(b);
        assert_eq!(cpu.int_reg(r(3)), 0);
    }

    #[test]
    fn fp_semantics() {
        let mut b = ProgramBuilder::new("fp");
        b.fli(f(0), 1.5).fli(f(1), 2.0);
        b.fadd(f(2), f(0), f(1));
        b.fmul(f(3), f(2), f(1));
        b.fmadd(f(4), f(0), f(1), f(3));
        b.li(r(1), 9).fcvt(f(5), r(1));
        b.halt();
        let (cpu, _) = run(b);
        assert_eq!(cpu.fp_reg(f(2)), 3.5);
        assert_eq!(cpu.fp_reg(f(3)), 7.0);
        assert_eq!(cpu.fp_reg(f(4)), 1.5f64.mul_add(2.0, 7.0));
        assert_eq!(cpu.fp_reg(f(5)), 9.0);
    }

    #[test]
    fn vector_semantics_match_lane_wise_scalar() {
        let mut b = ProgramBuilder::new("vec");
        b.data_u64s(0x100, &[1, 2, 3, 4]);
        b.data_u64s(0x120, &[10, 20, 30, 40]);
        b.li(r(1), 0x100);
        b.vload(v(0), r(1), 0);
        b.vload(v(1), r(1), 0x20);
        b.vadd(v(2), v(0), v(1));
        b.vmul(v(3), v(0), v(1));
        b.vmadd(v(4), v(0), v(1), v(2));
        b.vredsum(r(2), v(2));
        b.li(r(3), 7).vsplat(v(5), r(3));
        b.vstore(v(2), r(1), 0x40);
        b.halt();
        let (cpu, mem) = run(b);
        assert_eq!(cpu.vec_reg(v(2)), [11, 22, 33, 44]);
        assert_eq!(cpu.vec_reg(v(3)), [10, 40, 90, 160]);
        assert_eq!(cpu.vec_reg(v(4)), [21, 62, 123, 204]);
        assert_eq!(cpu.int_reg(r(2)), 110);
        assert_eq!(cpu.vec_reg(v(5)), [7; VLEN]);
        assert_eq!(mem.read_u64(0x140), 11);
        assert_eq!(mem.read_u64(0x158), 44);
    }

    #[test]
    fn branch_outcomes_are_reported() {
        let mut b = ProgramBuilder::new("br");
        b.li(r(1), 1).li(r(2), 2);
        let taken = b.label();
        b.blt(r(1), r(2), taken); // taken
        b.nop();
        b.bind(taken).unwrap();
        b.bge(r(1), r(2), taken); // not taken
        b.halt();
        let p = b.build().expect("test program is well-formed");
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        cpu.step(&p, &mut mem)
            .expect("test program executes cleanly");
        cpu.step(&p, &mut mem)
            .expect("test program executes cleanly");
        let s = cpu
            .step(&p, &mut mem)
            .expect("test program executes cleanly");
        assert_eq!(
            s.branch,
            Some(BranchOutcome {
                taken: true,
                next_pc: Pc(4)
            })
        );
        let s = cpu
            .step(&p, &mut mem)
            .expect("test program executes cleanly");
        assert_eq!(
            s.branch,
            Some(BranchOutcome {
                taken: false,
                next_pc: Pc(5)
            })
        );
    }

    #[test]
    fn call_and_ret_balance() {
        let mut b = ProgramBuilder::new("call");
        let func = b.label();
        b.call(func);
        b.halt();
        b.bind(func).unwrap();
        b.li(r(1), 99);
        b.ret();
        let (cpu, _) = run(b);
        assert_eq!(cpu.int_reg(r(1)), 99);
    }

    #[test]
    fn unbalanced_ret_is_an_error() {
        let mut b = ProgramBuilder::new("badret");
        b.ret();
        let p = b.build().expect("test program is well-formed");
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        assert_eq!(
            cpu.step(&p, &mut mem).unwrap_err(),
            GisaError::ReturnWithoutCall
        );
    }

    #[test]
    fn falling_off_the_end_is_an_error() {
        let mut b = ProgramBuilder::new("falloff");
        b.nop();
        let p = b.build().expect("test program is well-formed");
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        cpu.step(&p, &mut mem)
            .expect("test program executes cleanly");
        assert!(matches!(
            cpu.step(&p, &mut mem).unwrap_err(),
            GisaError::PcOutOfRange { pc: 1, len: 1 }
        ));
    }

    #[test]
    fn halt_is_sticky_and_counts_once() {
        let mut b = ProgramBuilder::new("halt");
        b.halt();
        let p = b.build().expect("test program is well-formed");
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        cpu.step(&p, &mut mem)
            .expect("test program executes cleanly");
        assert!(cpu.halted());
        assert_eq!(cpu.retired(), 1);
        cpu.step(&p, &mut mem)
            .expect("test program executes cleanly");
        assert_eq!(cpu.retired(), 1);
        assert_eq!(cpu.pc(), Pc(0));
    }

    #[test]
    fn loads_and_stores_report_accesses() {
        let mut b = ProgramBuilder::new("mem");
        b.li(r(1), 0x200).li(r(2), 5);
        b.store(r(2), r(1), 8);
        b.load(r(3), r(1), 8);
        b.halt();
        let p = b.build().expect("test program is well-formed");
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        cpu.step(&p, &mut mem)
            .expect("test program executes cleanly");
        cpu.step(&p, &mut mem)
            .expect("test program executes cleanly");
        let st = cpu
            .step(&p, &mut mem)
            .expect("test program executes cleanly");
        assert_eq!(
            st.mem,
            Some(MemAccess {
                addr: 0x208,
                size: 8,
                is_store: true
            })
        );
        let ld = cpu
            .step(&p, &mut mem)
            .expect("test program executes cleanly");
        assert_eq!(
            ld.mem,
            Some(MemAccess {
                addr: 0x208,
                size: 8,
                is_store: false
            })
        );
        assert_eq!(cpu.int_reg(r(3)), 5);
    }
}
