//! A small text assembler for the guest ISA.
//!
//! Accepts the same syntax [`crate::Inst`]'s `Display` implementation produces,
//! plus labels and comments, so programs round-trip through text. This is
//! the convenient path for writing custom workloads without the builder
//! API:
//!
//! ```
//! use powerchop_gisa::asm;
//!
//! # fn main() -> Result<(), powerchop_gisa::asm::AsmError> {
//! let program = asm::assemble(
//!     "count-to-ten",
//!     r#"
//!         li   r0, 0
//!         li   r1, 10
//!     top:
//!         addi r0, r0, 1
//!         blt  r0, r1, top    ; loop
//!         halt
//!     "#,
//! )?;
//! assert_eq!(program.len(), 5);
//! # Ok(())
//! # }
//! ```
//!
//! Syntax rules:
//!
//! - one instruction per line; `;` or `#` starts a comment,
//! - `name:` on its own line (or before an instruction) binds a label,
//! - registers are `rN`, `fN`, `vN`; immediates are decimal or `0x` hex,
//! - memory operands are `[rN+imm]` (the `+imm` may be omitted),
//! - branch/jump/call targets are label names.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::inst::Cond;
use crate::program::{Label, Program, ProgramBuilder};
use crate::reg::{FReg, Reg, VReg};
use crate::GisaError;

/// Errors produced while assembling guest programs from text.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line the error occurred on (0 for program-level
    /// errors such as unbound labels).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error on line {}: {}", self.line, self.message)
        }
    }
}

impl Error for AsmError {}

impl From<GisaError> for AsmError {
    fn from(e: GisaError) -> Self {
        AsmError::new(0, e.to_string())
    }
}

struct Assembler<'a> {
    builder: ProgramBuilder,
    labels: HashMap<&'a str, Label>,
}

impl<'a> Assembler<'a> {
    fn label(&mut self, name: &'a str) -> Label {
        if let Some(l) = self.labels.get(name) {
            *l
        } else {
            let l = self.builder.label();
            self.labels.insert(name, l);
            l
        }
    }
}

fn parse_index(token: &str, prefix: char, line: usize) -> Result<u8, AsmError> {
    let rest = token
        .strip_prefix(prefix)
        .ok_or_else(|| AsmError::new(line, format!("expected {prefix}-register, got `{token}`")))?;
    rest.parse()
        .map_err(|_| AsmError::new(line, format!("bad register `{token}`")))
}

fn reg(token: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::new(parse_index(token, 'r', line)?).map_err(|e| AsmError::new(line, e.to_string()))
}

fn freg(token: &str, line: usize) -> Result<FReg, AsmError> {
    FReg::new(parse_index(token, 'f', line)?).map_err(|e| AsmError::new(line, e.to_string()))
}

fn vreg(token: &str, line: usize) -> Result<VReg, AsmError> {
    VReg::new(parse_index(token, 'v', line)?).map_err(|e| AsmError::new(line, e.to_string()))
}

fn imm(token: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| AsmError::new(line, format!("bad immediate `{token}`")))?;
    Ok(if neg { -value } else { value })
}

fn fimm(token: &str, line: usize) -> Result<f64, AsmError> {
    token
        .parse()
        .map_err(|_| AsmError::new(line, format!("bad float immediate `{token}`")))
}

/// Parses a `[rN+imm]` or `[rN]` memory operand into (base, offset).
fn mem_operand(token: &str, line: usize) -> Result<(Reg, i64), AsmError> {
    let inner = token
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| AsmError::new(line, format!("expected [rN+imm], got `{token}`")))?;
    // Split on '+' or a '-' that is not the leading register character.
    if let Some(pos) = inner[1..].find(['+', '-']).map(|p| p + 1) {
        let (base, off) = inner.split_at(pos);
        let off = if let Some(rest) = off.strip_prefix('+') {
            rest.to_owned()
        } else {
            off.to_owned()
        };
        Ok((reg(base, line)?, imm(&off, line)?))
    } else {
        Ok((reg(inner, line)?, 0))
    }
}

/// Disassembles a program back into assembler text that [`assemble`]
/// accepts: branch/jump/call targets become `L<pc>` labels, bound at the
/// right positions. Round-tripping preserves the instruction sequence
/// exactly.
///
/// ```
/// use powerchop_gisa::asm::{assemble, disassemble};
///
/// # fn main() -> Result<(), powerchop_gisa::asm::AsmError> {
/// let p = assemble("demo", "li r0, 1\ntop:\naddi r0, r0, 1\nblt r0, r1, top\nhalt")?;
/// let text = disassemble(&p);
/// let q = assemble("demo2", &text)?;
/// assert_eq!(p.insts(), q.insts());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn disassemble(program: &Program) -> String {
    use crate::inst::Inst;
    use std::collections::BTreeSet;

    // Collect every control-transfer target that needs a label.
    let mut targets = BTreeSet::new();
    for inst in program.insts() {
        match inst {
            Inst::Branch { target, .. } | Inst::Jmp { target } | Inst::Call { target } => {
                targets.insert(target.0);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    for (pc, inst) in program.insts().iter().enumerate() {
        if targets.contains(&(pc as u32)) {
            out.push_str(&format!("L{pc}:\n"));
        }
        let line = match inst {
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                format!("b{cond} {rs}, {rt}, L{}", target.0)
            }
            Inst::Jmp { target } => format!("jmp L{}", target.0),
            Inst::Call { target } => format!("call L{}", target.0),
            other => other.to_string(),
        };
        out.push_str("    ");
        out.push_str(&line);
        out.push('\n');
    }
    // Targets past the final instruction (fall-off labels) still need
    // binding so the text re-assembles.
    for t in targets.iter().filter(|t| **t as usize >= program.len()) {
        out.push_str(&format!("L{t}:\n    nop\n"));
    }
    out
}

/// Assembles `source` into a [`Program`] called `name`.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics, bad registers/immediates, or unbound/duplicate
/// labels.
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut asm = Assembler {
        builder: ProgramBuilder::new(name),
        labels: HashMap::new(),
    };

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        // Strip comments.
        let code = raw.split([';', '#']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        // Leading labels (possibly followed by an instruction).
        let mut rest = code;
        while let Some(colon) = rest.find(':') {
            let (label_name, after) = rest.split_at(colon);
            let label_name = label_name.trim();
            if label_name.is_empty() || label_name.contains(char::is_whitespace) {
                break; // not a label — let instruction parsing complain
            }
            // Borrow gymnastics: keys must outlive the map, so intern via
            // the source slice.
            let offset = label_name.as_ptr() as usize - source.as_ptr() as usize;
            let key = &source[offset..offset + label_name.len()];
            let label = asm.label(key);
            asm.builder
                .bind(label)
                .map_err(|_| AsmError::new(lineno, format!("label `{label_name}` bound twice")))?;
            rest = after[1..].trim_start();
        }
        if rest.is_empty() {
            continue;
        }
        parse_instruction(&mut asm, rest, lineno)?;
    }

    asm.builder.build().map_err(|e| match e {
        GisaError::UnboundLabel(_) => AsmError::new(0, "a referenced label was never bound"),
        other => AsmError::from(other),
    })
}

fn parse_instruction<'a>(
    asm: &mut Assembler<'a>,
    text: &'a str,
    line: usize,
) -> Result<(), AsmError> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(AsmError::new(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    let b = &mut asm.builder;
    match mnemonic {
        "li" => {
            want(2)?;
            b.li(reg(ops[0], line)?, imm(ops[1], line)?);
        }
        "addi" => {
            want(3)?;
            b.addi(reg(ops[0], line)?, reg(ops[1], line)?, imm(ops[2], line)?);
        }
        "add" | "sub" | "mul" | "and" | "or" | "xor" | "shl" | "shr" | "slt" | "rem" => {
            want(3)?;
            let (rd, rs, rt) = (reg(ops[0], line)?, reg(ops[1], line)?, reg(ops[2], line)?);
            match mnemonic {
                "add" => b.add(rd, rs, rt),
                "sub" => b.sub(rd, rs, rt),
                "mul" => b.mul(rd, rs, rt),
                "and" => b.and(rd, rs, rt),
                "or" => b.or(rd, rs, rt),
                "xor" => b.xor(rd, rs, rt),
                "shl" => b.shl(rd, rs, rt),
                "shr" => b.shr(rd, rs, rt),
                "slt" => b.slt(rd, rs, rt),
                _ => b.rem(rd, rs, rt),
            };
        }
        "fli" => {
            want(2)?;
            b.fli(freg(ops[0], line)?, fimm(ops[1], line)?);
        }
        "fadd" | "fmul" => {
            want(3)?;
            let (fd, fs, ft) = (
                freg(ops[0], line)?,
                freg(ops[1], line)?,
                freg(ops[2], line)?,
            );
            if mnemonic == "fadd" {
                b.fadd(fd, fs, ft);
            } else {
                b.fmul(fd, fs, ft);
            }
        }
        "fmadd" => {
            want(4)?;
            b.fmadd(
                freg(ops[0], line)?,
                freg(ops[1], line)?,
                freg(ops[2], line)?,
                freg(ops[3], line)?,
            );
        }
        "fcvt" => {
            want(2)?;
            b.fcvt(freg(ops[0], line)?, reg(ops[1], line)?);
        }
        "vadd" | "vmul" => {
            want(3)?;
            let (vd, vs, vt) = (
                vreg(ops[0], line)?,
                vreg(ops[1], line)?,
                vreg(ops[2], line)?,
            );
            if mnemonic == "vadd" {
                b.vadd(vd, vs, vt);
            } else {
                b.vmul(vd, vs, vt);
            }
        }
        "vmadd" => {
            want(4)?;
            b.vmadd(
                vreg(ops[0], line)?,
                vreg(ops[1], line)?,
                vreg(ops[2], line)?,
                vreg(ops[3], line)?,
            );
        }
        "vsplat" => {
            want(2)?;
            b.vsplat(vreg(ops[0], line)?, reg(ops[1], line)?);
        }
        "vredsum" => {
            want(2)?;
            b.vredsum(reg(ops[0], line)?, vreg(ops[1], line)?);
        }
        "vload" => {
            want(2)?;
            let (base, off) = mem_operand(ops[1], line)?;
            b.vload(vreg(ops[0], line)?, base, off);
        }
        "vstore" => {
            want(2)?;
            let (base, off) = mem_operand(ops[1], line)?;
            b.vstore(vreg(ops[0], line)?, base, off);
        }
        "load" => {
            want(2)?;
            let (base, off) = mem_operand(ops[1], line)?;
            b.load(reg(ops[0], line)?, base, off);
        }
        "store" => {
            want(2)?;
            let (base, off) = mem_operand(ops[1], line)?;
            b.store(reg(ops[0], line)?, base, off);
        }
        "beq" | "bne" | "blt" | "bge" => {
            want(3)?;
            let cond = match mnemonic {
                "beq" => Cond::Eq,
                "bne" => Cond::Ne,
                "blt" => Cond::Lt,
                _ => Cond::Ge,
            };
            let (rs, rt) = (reg(ops[0], line)?, reg(ops[1], line)?);
            let target = asm.label(ops[2]);
            asm.builder.branch(cond, rs, rt, target);
        }
        "jmp" => {
            want(1)?;
            let target = asm.label(ops[0]);
            asm.builder.jmp(target);
        }
        "call" => {
            want(1)?;
            let target = asm.label(ops[0]);
            asm.builder.call(target);
        }
        "jr" => {
            want(1)?;
            b.jr(reg(ops[0], line)?);
        }
        "ret" => {
            want(0)?;
            b.ret();
        }
        "halt" => {
            want(0)?;
            b.halt();
        }
        "nop" => {
            want(0)?;
            b.nop();
        }
        other => return Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cpu, Memory};

    fn run(source: &str) -> Cpu {
        let p = assemble("test", source).expect("test source assembles");
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        p.init_memory(&mut mem);
        for _ in 0..1_000_000 {
            if cpu.halted() {
                break;
            }
            cpu.step(&p, &mut mem)
                .expect("test program executes cleanly");
        }
        assert!(cpu.halted());
        cpu
    }

    #[test]
    fn loop_program_assembles_and_runs() {
        let cpu = run("
            li r0, 0
            li r1, 25
        top:
            addi r0, r0, 1
            blt r0, r1, top
            halt
        ");
        assert_eq!(
            cpu.int_reg(Reg::new(0).expect("register index in range")),
            25
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let cpu = run("
            ; a comment line
            li r2, 0x10   # trailing comment
            halt
        ");
        assert_eq!(
            cpu.int_reg(Reg::new(2).expect("register index in range")),
            16
        );
    }

    #[test]
    fn memory_operands_round_trip() {
        let cpu = run("
            li r1, 0x200
            li r2, 7
            store r2, [r1+8]
            load r3, [r1+8]
            load r4, [r1]
            halt
        ");
        assert_eq!(
            cpu.int_reg(Reg::new(3).expect("register index in range")),
            7
        );
        assert_eq!(
            cpu.int_reg(Reg::new(4).expect("register index in range")),
            0
        );
    }

    #[test]
    fn vector_and_fp_mnemonics() {
        let cpu = run("
            li r1, 5
            vsplat v0, r1
            vadd v1, v0, v0
            vredsum r2, v1
            fli f0, 1.5
            fadd f1, f0, f0
            halt
        ");
        assert_eq!(
            cpu.int_reg(Reg::new(2).expect("register index in range")),
            40
        );
        assert_eq!(
            cpu.fp_reg(FReg::new(1).expect("register index in range")),
            3.0
        );
    }

    #[test]
    fn forward_labels_and_calls() {
        let cpu = run("
            call fn
            halt
        fn: li r5, 99
            ret
        ");
        assert_eq!(
            cpu.int_reg(Reg::new(5).expect("register index in range")),
            99
        );
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble("bad", "nop\nfrobnicate r1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn bad_register_is_rejected() {
        let err = assemble("bad", "li r99, 1").unwrap_err();
        assert!(err.to_string().contains("invalid"));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let err = assemble("bad", "add r1, r2").unwrap_err();
        assert!(err.to_string().contains("expects 3 operands"));
    }

    #[test]
    fn unbound_label_is_rejected() {
        let err = assemble("bad", "jmp nowhere\nhalt").unwrap_err();
        assert!(err.to_string().contains("never bound"));
    }

    #[test]
    fn duplicate_label_is_rejected() {
        let err = assemble("bad", "x: nop\nx: halt").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn disassemble_round_trips_control_flow() {
        let source = "
            li r0, 0
            li r1, 10
        top:
            addi r0, r0, 1
            beq r0, r1, done
            jmp top
        done:
            call helper
            halt
        helper:
            li r2, 1
            ret
        ";
        let p = assemble("p", source).expect("test source assembles");
        let text = disassemble(&p);
        let q = assemble("q", &text).expect("test source assembles");
        assert_eq!(p.insts(), q.insts());
        // And the reassembled program behaves identically.
        let mut cpu = Cpu::new(&q);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&q, &mut mem)
                .expect("test program executes cleanly");
        }
        assert_eq!(
            cpu.int_reg(Reg::new(0).expect("register index in range")),
            10
        );
        assert_eq!(
            cpu.int_reg(Reg::new(2).expect("register index in range")),
            1
        );
    }

    #[test]
    fn display_round_trips_through_assembler() {
        // Build a program with the builder, print it, re-assemble it, and
        // compare the architectural results.
        let source = "
            li r1, 3
            li r2, 4
            mul r3, r1, r2
            li r4, 0x100
            store r3, [r4+16]
            load r5, [r4+16]
            halt
        ";
        let p1 = assemble("p1", source).expect("test source assembles");
        let printed: String = p1
            .insts()
            .iter()
            .map(|i| format!("{i}\n"))
            .collect::<String>()
            // Branch targets print as `@N`, which the assembler does not
            // accept; this program has none.
            .replace("@", "at");
        let p2 = assemble("p2", &printed).expect("test source assembles");
        assert_eq!(p1.insts(), p2.insts());
    }
}
