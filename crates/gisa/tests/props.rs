//! Property-based tests for the guest ISA core data structures,
//! driven by the workspace's seeded harness (`powerchop_faults::check`).

use powerchop_faults::check::cases;
use powerchop_gisa::{Cond, Cpu, Memory, ProgramBuilder, Reg, VReg, VLEN};

/// Any sequence of u64 writes then reads behaves like a flat array.
#[test]
fn memory_matches_model() {
    cases("memory flat-array model", 256, |rng| {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for _ in 0..1 + rng.gen_range(200) {
            let addr = rng.gen_range(1 << 20) & !7; // aligned so the model is exact
            let value = rng.next_u64();
            mem.write_u64(addr, value);
            model.insert(addr, value);
        }
        for (addr, value) in &model {
            assert_eq!(mem.read_u64(*addr), *value);
        }
    });
}

/// Unaligned single-word round trips always succeed, including across
/// page boundaries.
#[test]
fn memory_unaligned_round_trip() {
    cases("memory unaligned roundtrip", 256, |rng| {
        let addr = rng.next_u64().min(u64::MAX - 8);
        let value = rng.next_u64();
        let mut mem = Memory::new();
        mem.write_u64(addr, value);
        assert_eq!(mem.read_u64(addr), value);
    });
}

/// Vector add equals lane-wise scalar add for arbitrary lane values.
#[test]
fn vadd_matches_scalar() {
    cases("vadd lane-wise", 128, |rng| {
        let a: [i64; 4] = std::array::from_fn(|_| rng.next_u64() as i64);
        let b: [i64; 4] = std::array::from_fn(|_| rng.next_u64() as i64);
        let r1 = Reg::new(1).expect("register index in range");
        let v0 = VReg::new(0).expect("vector register index in range");
        let v1 = VReg::new(1).expect("vector register index in range");
        let v2 = VReg::new(2).expect("vector register index in range");
        let mut builder = ProgramBuilder::new("prop-vadd");
        builder.data_u64s(0x1000, &a.map(|x| x as u64));
        builder.data_u64s(0x1000 + 8 * VLEN as u64, &b.map(|x| x as u64));
        builder.li(r1, 0x1000);
        builder.vload(v0, r1, 0);
        builder.vload(v1, r1, 8 * VLEN as i64);
        builder.vadd(v2, v0, v1);
        builder.halt();
        let p = builder.build().expect("generated program is well-formed");
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        p.init_memory(&mut mem);
        while !cpu.halted() {
            cpu.step(&p, &mut mem)
                .expect("generated programs execute cleanly");
        }
        let expect: Vec<i64> = (0..VLEN).map(|i| a[i].wrapping_add(b[i])).collect();
        assert_eq!(cpu.vec_reg(v2).to_vec(), expect);
    });
}

/// `Cond::eval` is consistent with the primitive comparison operators.
#[test]
fn cond_eval_matches_operators() {
    cases("cond eval", 512, |rng| {
        let a = rng.next_u64() as i64;
        let b = if rng.gen_bool(0.1) {
            a
        } else {
            rng.next_u64() as i64
        };
        assert_eq!(Cond::Eq.eval(a, b), a == b);
        assert_eq!(Cond::Ne.eval(a, b), a != b);
        assert_eq!(Cond::Lt.eval(a, b), a < b);
        assert_eq!(Cond::Ge.eval(a, b), a >= b);
    });
}

/// A counted loop retires exactly `2n + 3` instructions regardless of
/// the trip count (2 setup + 2 per iteration + halt).
#[test]
fn counted_loop_retires_expected_instructions() {
    cases("counted loop retire count", 128, |rng| {
        let n = 1 + rng.gen_range(499) as i64;
        let r0 = Reg::new(0).expect("register index in range");
        let r1 = Reg::new(1).expect("register index in range");
        let mut b = ProgramBuilder::new("prop-loop");
        b.li(r0, 0);
        b.li(r1, n);
        let top = b.bind_label();
        b.addi(r0, r0, 1);
        b.blt(r0, r1, top);
        b.halt();
        let p = b.build().expect("generated program is well-formed");
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&p, &mut mem)
                .expect("generated programs execute cleanly");
        }
        assert_eq!(cpu.int_reg(r0), n);
        assert_eq!(cpu.retired(), 2 + 2 * n as u64 + 1);
    });
}
