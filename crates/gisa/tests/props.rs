//! Property-based tests for the guest ISA core data structures.

use proptest::prelude::*;

use powerchop_gisa::{Cond, Cpu, Memory, ProgramBuilder, Reg, VReg, VLEN};

proptest! {
    /// Any sequence of u64 writes then reads behaves like a flat array.
    #[test]
    fn memory_matches_model(ops in prop::collection::vec((0u64..1 << 20, any::<u64>()), 1..200)) {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, value) in &ops {
            let addr = addr & !7; // aligned writes so the model is exact
            mem.write_u64(addr, *value);
            model.insert(addr, *value);
        }
        for (addr, value) in &model {
            prop_assert_eq!(mem.read_u64(*addr), *value);
        }
    }

    /// Unaligned single-word round trips always succeed, including across
    /// page boundaries.
    #[test]
    fn memory_unaligned_round_trip(addr in any::<u64>(), value in any::<u64>()) {
        let addr = addr.min(u64::MAX - 8);
        let mut mem = Memory::new();
        mem.write_u64(addr, value);
        prop_assert_eq!(mem.read_u64(addr), value);
    }

    /// Vector add equals lane-wise scalar add for arbitrary lane values.
    #[test]
    fn vadd_matches_scalar(a in prop::array::uniform4(any::<i64>()),
                           b in prop::array::uniform4(any::<i64>())) {
        let r1 = Reg::new(1).unwrap();
        let v0 = VReg::new(0).unwrap();
        let v1 = VReg::new(1).unwrap();
        let v2 = VReg::new(2).unwrap();
        let mut builder = ProgramBuilder::new("prop-vadd");
        builder.data_u64s(0x1000, &a.map(|x| x as u64));
        builder.data_u64s(0x1000 + 8 * VLEN as u64, &b.map(|x| x as u64));
        builder.li(r1, 0x1000);
        builder.vload(v0, r1, 0);
        builder.vload(v1, r1, 8 * VLEN as i64);
        builder.vadd(v2, v0, v1);
        builder.halt();
        let p = builder.build().unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        p.init_memory(&mut mem);
        while !cpu.halted() {
            cpu.step(&p, &mut mem).unwrap();
        }
        let expect: Vec<i64> = (0..VLEN).map(|i| a[i].wrapping_add(b[i])).collect();
        prop_assert_eq!(cpu.vec_reg(v2).to_vec(), expect);
    }

    /// `Cond::eval` is consistent with the primitive comparison operators.
    #[test]
    fn cond_eval_matches_operators(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(Cond::Eq.eval(a, b), a == b);
        prop_assert_eq!(Cond::Ne.eval(a, b), a != b);
        prop_assert_eq!(Cond::Lt.eval(a, b), a < b);
        prop_assert_eq!(Cond::Ge.eval(a, b), a >= b);
    }

    /// A counted loop retires exactly `3n + 3` instructions regardless of
    /// the trip count (li, li, n*(addi, addi-on-last? no: addi+blt), halt).
    #[test]
    fn counted_loop_retires_expected_instructions(n in 1i64..500) {
        let r0 = Reg::new(0).unwrap();
        let r1 = Reg::new(1).unwrap();
        let mut b = ProgramBuilder::new("prop-loop");
        b.li(r0, 0);
        b.li(r1, n);
        let top = b.bind_label();
        b.addi(r0, r0, 1);
        b.blt(r0, r1, top);
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&p, &mut mem).unwrap();
        }
        prop_assert_eq!(cpu.int_reg(r0), n);
        // 2 setup + 2 per iteration + 1 halt
        prop_assert_eq!(cpu.retired(), 2 + 2 * n as u64 + 1);
    }
}
