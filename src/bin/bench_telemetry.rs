//! Micro-benchmark for the telemetry hot path.
//!
//! Measures simulation throughput (guest instructions per second) in three
//! modes — no tracer plumbing (`run_program`), a disabled tracer threaded
//! through every emit point, and a fully enabled flight recorder — and
//! asserts the tentpole claim: a *disabled* tracer costs nothing beyond
//! measurement noise, and an *enabled* one stays within a generous bound.
//!
//! Results land in `bench_results/BENCH_telemetry.json`. Run with:
//!
//! ```text
//! cargo run --release --bin bench_telemetry
//! ```

use std::time::Instant;

use powerchop_suite::powerchop::{run_program, run_program_traced, ManagerKind, RunConfig};
use powerchop_suite::telemetry::{TelemetryConfig, Tracer};
use powerchop_suite::workloads::{by_name, Scale};

const BENCH: &str = "gobmk";
const SCALE: Scale = Scale(0.2);
const BUDGET: u64 = 2_000_000;
const WARMUPS: usize = 2;
const TRIALS: usize = 7;

/// Disabled-tracer throughput must stay within this fraction of the
/// baseline median. Generous on purpose: shared CI boxes jitter by tens
/// of percent, and a real regression (a hot-path allocation, a formatting
/// call) costs integer factors, not 30%.
const DISABLED_FLOOR: f64 = 0.70;
/// Enabled-recorder throughput floor relative to baseline.
const ENABLED_FLOOR: f64 = 0.50;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Baseline,
    Disabled,
    Enabled,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Disabled => "tracer_disabled",
            Mode::Enabled => "tracer_enabled",
        }
    }
}

fn one_trial(mode: Mode) -> f64 {
    let bench = by_name(BENCH).expect("known benchmark");
    let program = bench.program(SCALE);
    let mut cfg = RunConfig::for_kind(bench.core_kind());
    cfg.max_instructions = BUDGET;
    let start = Instant::now();
    let instructions = match mode {
        Mode::Baseline => {
            let report =
                run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes");
            report.instructions
        }
        Mode::Disabled | Mode::Enabled => {
            let tracer = if mode == Mode::Enabled {
                Tracer::enabled(TelemetryConfig::default())
            } else {
                Tracer::disabled()
            };
            let (report, _) = run_program_traced(&program, ManagerKind::PowerChop, &cfg, tracer)
                .expect("run completes");
            report.instructions
        }
    };
    instructions as f64 / start.elapsed().as_secs_f64()
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[sorted.len() / 2]
}

fn json_array(samples: &[f64]) -> String {
    let items: Vec<String> = samples.iter().map(|s| format!("{s:.0}")).collect();
    format!("[{}]", items.join(","))
}

fn main() {
    let modes = [Mode::Baseline, Mode::Disabled, Mode::Enabled];

    for mode in modes {
        for _ in 0..WARMUPS {
            one_trial(mode);
        }
    }

    // Interleave trials round-robin so slow drift (thermal throttling,
    // background load) lands on every mode equally instead of biasing
    // whichever ran last.
    let mut samples = [const { Vec::new() }; 3];
    for _ in 0..TRIALS {
        for (i, mode) in modes.into_iter().enumerate() {
            samples[i].push(one_trial(mode));
        }
    }

    let medians: Vec<f64> = samples.iter().map(|s| median(s)).collect();
    let (base, disabled, enabled) = (medians[0], medians[1], medians[2]);
    for (mode, m) in modes.into_iter().zip(&medians) {
        println!(
            "{:<16} {:>12.0} instr/s (median of {TRIALS})",
            mode.name(),
            m
        );
    }
    let disabled_ratio = disabled / base;
    let enabled_ratio = enabled / base;
    println!("disabled/baseline: {disabled_ratio:.3} (floor {DISABLED_FLOOR})");
    println!("enabled/baseline:  {enabled_ratio:.3} (floor {ENABLED_FLOOR})");

    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"telemetry_overhead\",\n");
    out.push_str(&format!("  \"workload\": \"{BENCH}\",\n"));
    out.push_str(&format!("  \"scale\": {},\n", SCALE.0));
    out.push_str(&format!("  \"instruction_budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"warmups\": {WARMUPS},\n"));
    out.push_str(&format!("  \"trials\": {TRIALS},\n"));
    out.push_str("  \"instr_per_sec\": {\n");
    for (i, mode) in modes.into_iter().enumerate() {
        let comma = if i + 1 < modes.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{ \"median\": {:.0}, \"samples\": {} }}{comma}\n",
            mode.name(),
            medians[i],
            json_array(&samples[i]),
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"disabled_over_baseline\": {disabled_ratio:.4},\n"
    ));
    out.push_str(&format!(
        "  \"enabled_over_baseline\": {enabled_ratio:.4}\n"
    ));
    out.push_str("}\n");
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/BENCH_telemetry.json", out)
        .expect("write bench_results/BENCH_telemetry.json");
    println!("wrote bench_results/BENCH_telemetry.json");

    assert!(
        disabled_ratio >= DISABLED_FLOOR,
        "disabled tracer costs more than noise: {disabled_ratio:.3} < {DISABLED_FLOOR}"
    );
    assert!(
        enabled_ratio >= ENABLED_FLOOR,
        "enabled recorder overhead out of bounds: {enabled_ratio:.3} < {ENABLED_FLOOR}"
    );
    println!("telemetry overhead within bounds");
}
