//! Wall-clock scaling curve for the parallel sweep engine.
//!
//! Runs the full 29-benchmark sweep (the same fan-out `run --all`,
//! `stress` and `supervise` use) at several `--jobs` settings, timing
//! each pass and checking that the JSON artifact — every report, in
//! benchmark order — is byte-identical at every thread count. The
//! determinism check is the point: the pool must buy wall-clock time
//! without perturbing a single output byte.
//!
//! The recorded JSON carries the host's CPU count: on a multi-core box
//! the curve shows the wall-clock win (2x+ at `--jobs 4` with four or
//! more cores); on a single-core container the curve is flat and the
//! byte-identity assertion is the meaningful half.
//!
//! Results land in `bench_results/BENCH_sweep.json`. Run with:
//!
//! ```text
//! cargo run --release --bin bench_sweep
//! ```

use std::time::Instant;

use powerchop_suite::cli::commands::report_to_json;
use powerchop_suite::exec::run_jobs;
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::telemetry::export::JsonWriter;
use powerchop_suite::workloads::{Benchmark, Scale};

const SCALE: Scale = Scale(0.2);
const BUDGET: u64 = 4_000_000;
const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One full sweep: every benchmark through the pool at `jobs` workers,
/// folded into the concatenated JSON-lines artifact in benchmark order.
fn sweep(benches: &[&'static Benchmark], jobs: usize) -> String {
    let results = run_jobs(benches, jobs, |_, b| {
        let mut cfg = RunConfig::for_kind(b.core_kind());
        cfg.max_instructions = BUDGET;
        let program = b.program(SCALE);
        let report = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes");
        report_to_json(&report)
    });
    let mut artifact = String::new();
    for row in results {
        artifact.push_str(&row.expect("no benchmark panics"));
        artifact.push('\n');
    }
    artifact
}

fn main() {
    let benches: Vec<&'static Benchmark> = powerchop_suite::workloads::all().iter().collect();
    println!(
        "sweeping {} benchmarks (budget {BUDGET}, scale {}) at jobs {JOB_COUNTS:?}",
        benches.len(),
        SCALE.0
    );

    // Warm up allocators, page tables and the frequency governor.
    let reference = sweep(&benches, JOB_COUNTS[JOB_COUNTS.len() - 1]);

    let mut secs = Vec::with_capacity(JOB_COUNTS.len());
    for jobs in JOB_COUNTS {
        let start = Instant::now();
        let artifact = sweep(&benches, jobs);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(
            artifact, reference,
            "sweep artifact must be byte-identical at every thread count"
        );
        println!("jobs {jobs:>2}: {elapsed:>7.2}s (artifact identical)");
        secs.push(elapsed);
    }

    let base = secs[0];
    let mut w = JsonWriter::object();
    w.field_str("benchmark", "parallel_sweep_scaling");
    w.field_u64(
        "available_cpus",
        powerchop_suite::bench_support::available_cpus(),
    );
    powerchop_suite::bench_support::record_host_topology(&mut w);
    w.field_u64("benchmarks", benches.len() as u64);
    w.field_u64("instruction_budget", BUDGET);
    w.field_f64("scale", SCALE.0, 2);
    w.field_bool("artifacts_byte_identical", true);
    {
        let mut points = JsonWriter::array();
        for (jobs, s) in JOB_COUNTS.into_iter().zip(&secs) {
            let mut p = JsonWriter::object();
            p.field_u64("jobs", jobs as u64);
            p.field_f64("seconds", *s, 3);
            p.field_f64("speedup_vs_jobs1", base / s, 3);
            points.push_raw(&p.finish());
        }
        w.field_raw("points", &points.finish());
    }
    let out = w.finish();

    powerchop_suite::telemetry::export::validate_json(&out).expect("bench JSON is well-formed");
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/BENCH_sweep.json", format!("{out}\n"))
        .expect("write bench_results/BENCH_sweep.json");
    println!("wrote bench_results/BENCH_sweep.json");

    for (jobs, s) in JOB_COUNTS.into_iter().zip(&secs) {
        println!("speedup at jobs {jobs}: {:.2}x", base / s);
    }
    assert!(secs.iter().all(|s| *s > 0.0), "timings must be nonzero");
}
