//! Micro-benchmark for the simulator hot path.
//!
//! Measures raw simulation throughput (guest instructions per second)
//! over a representative workload mix — integer control flow (`gobmk`),
//! floating-point/vector (`lbm`), and a mobile-core browsing trace
//! (`google`) — and compares the harmonic-mean throughput against the
//! pre-optimization baseline recorded below. The interpret/translate
//! loop, the cache hierarchy model, and the per-step accounting all sit
//! on this path, so any regression there shows up here as a ratio drop.
//!
//! Results land in `bench_results/BENCH_hotpath.json`. Run with:
//!
//! ```text
//! cargo run --release --bin bench_hotpath
//! ```

use std::time::Instant;

use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::telemetry::export::JsonWriter;
use powerchop_suite::workloads::{by_name, Scale};

/// Workload mix: one integer-heavy, one vector-heavy, one mobile trace.
const WORKLOADS: [&str; 3] = ["gobmk", "lbm", "google"];
const SCALE: Scale = Scale(0.2);
const BUDGET: u64 = 4_000_000;
const WARMUPS: usize = 2;
const TRIALS: usize = 7;

/// Harmonic-mean guest-instructions/sec of the pre-optimization tree,
/// measured on the reference box with the command above (median of five
/// full runs, each the harmonic mean of per-workload medians of 7
/// trials). The acceptance gate for the hot-path work is a >= 1.3x
/// improvement over this figure; CI only asserts nonzero throughput
/// because shared runners are not the reference box.
const PRE_PR_BASELINE: f64 = 18_758_699.0;

fn one_trial(name: &str) -> f64 {
    let bench = by_name(name).expect("known benchmark");
    let program = bench.program(SCALE);
    let mut cfg = RunConfig::for_kind(bench.core_kind());
    cfg.max_instructions = BUDGET;
    let start = Instant::now();
    let report = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes");
    report.instructions as f64 / start.elapsed().as_secs_f64()
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[sorted.len() / 2]
}

fn harmonic_mean(values: &[f64]) -> f64 {
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

fn main() {
    for name in WORKLOADS {
        for _ in 0..WARMUPS {
            one_trial(name);
        }
    }

    // Interleave trials round-robin so slow drift (thermal throttling,
    // background load) lands on every workload equally.
    let mut samples = [const { Vec::new() }; WORKLOADS.len()];
    for _ in 0..TRIALS {
        for (i, name) in WORKLOADS.into_iter().enumerate() {
            samples[i].push(one_trial(name));
        }
    }

    let medians: Vec<f64> = samples.iter().map(|s| median(s)).collect();
    for (name, m) in WORKLOADS.into_iter().zip(&medians) {
        println!("{name:<16} {m:>12.0} instr/s (median of {TRIALS})");
    }
    let hmean = harmonic_mean(&medians);
    let speedup = hmean / PRE_PR_BASELINE;
    println!("harmonic mean    {hmean:>12.0} instr/s");
    println!("vs pre-PR baseline ({PRE_PR_BASELINE:.0}): {speedup:.3}x");

    let mut w = JsonWriter::object();
    w.field_str("benchmark", "hotpath_throughput");
    powerchop_suite::bench_support::record_host_topology(&mut w);
    w.field_raw(
        "workloads",
        &format!(
            "[{}]",
            WORKLOADS
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    w.field_f64("scale", SCALE.0, 2);
    w.field_u64("instruction_budget", BUDGET);
    w.field_u64("warmups", WARMUPS as u64);
    w.field_u64("trials", TRIALS as u64);
    {
        let mut per = JsonWriter::object();
        for (i, name) in WORKLOADS.into_iter().enumerate() {
            let mut entry = JsonWriter::object();
            entry.field_f64("median", medians[i], 0);
            entry.field_raw(
                "samples",
                &format!(
                    "[{}]",
                    samples[i]
                        .iter()
                        .map(|s| format!("{s:.0}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            );
            per.field_raw(name, &entry.finish());
        }
        w.field_raw("instr_per_sec", &per.finish());
    }
    w.field_f64("harmonic_mean_instr_per_sec", hmean, 0);
    w.field_f64("pre_pr_baseline_instr_per_sec", PRE_PR_BASELINE, 0);
    w.field_f64("speedup_vs_baseline", speedup, 4);
    let out = w.finish();

    powerchop_suite::telemetry::export::validate_json(&out).expect("bench JSON is well-formed");
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/BENCH_hotpath.json", format!("{out}\n"))
        .expect("write bench_results/BENCH_hotpath.json");
    println!("wrote bench_results/BENCH_hotpath.json");

    assert!(hmean > 0.0, "throughput must be nonzero");
}
