//! Micro-benchmark for the request-observability hot path.
//!
//! The serve daemon's tentpole observability claim is that the
//! per-request span ledger is effectively free: the full ritual a
//! traced request performs — mint a trace id, stamp all seven span
//! phases, fold the latency into the per-op histogram, render the hex
//! id for the reply — must cost under 2% of a representative request's
//! compute time. This bench measures both sides and asserts the ratio.
//!
//! Results land in `bench_results/BENCH_observability.json`. Run with:
//!
//! ```text
//! cargo run --release --bin bench_observability
//! ```

use std::hint::black_box;
use std::time::Instant;

use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::telemetry::{format_trace_id, trace_id, MetricsRegistry, Phase, SpanLedger};
use powerchop_suite::workloads::{by_name, Scale};

const BENCH: &str = "hmmer";
const SCALE: Scale = Scale(0.05);
const BUDGET: u64 = 200_000;
const WARMUPS: usize = 2;
const TRIALS: usize = 7;
/// Ledger rituals per timing trial — enough to swamp timer resolution.
const RITUALS_PER_TRIAL: u64 = 100_000;
/// The tentpole bound: span-ledger bookkeeping per request must stay
/// under this percentage of the request's own compute time.
const OVERHEAD_CEILING_PCT: f64 = 2.0;

/// Nanoseconds one representative serve request spends computing: a
/// direct run of the daemon's default-knob workload.
fn request_trial() -> f64 {
    let bench = by_name(BENCH).expect("known benchmark");
    let program = bench.program(SCALE);
    let mut cfg = RunConfig::for_kind(bench.core_kind());
    cfg.max_instructions = BUDGET;
    let start = Instant::now();
    let report = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes");
    black_box(report.cycles);
    start.elapsed().as_nanos() as f64
}

/// Nanoseconds per full per-request observability ritual: everything
/// `serve` adds to a traced request outside the compute itself.
fn ledger_trial(registry: &mut MetricsRegistry) -> f64 {
    let start = Instant::now();
    for n in 0..RITUALS_PER_TRIAL {
        let trace = trace_id(0xBEEF, n);
        let mut ledger = SpanLedger::new();
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            ledger.record(phase, black_box(100 + i as u64));
        }
        ledger.record_cycles(Phase::Compute, black_box(50_000));
        let total_ns = ledger.total_wall_ns();
        registry.observe(
            "serve_request_duration_ms{op=\"run\"}",
            total_ns / 1_000_000,
        );
        black_box(format_trace_id(trace));
        black_box(ledger.wall_ns(Phase::Queue));
    }
    start.elapsed().as_nanos() as f64 / RITUALS_PER_TRIAL as f64
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[sorted.len() / 2]
}

fn json_array(samples: &[f64]) -> String {
    let items: Vec<String> = samples.iter().map(|s| format!("{s:.1}")).collect();
    format!("[{}]", items.join(","))
}

fn main() {
    let mut registry = MetricsRegistry::new();
    for _ in 0..WARMUPS {
        request_trial();
        ledger_trial(&mut registry);
    }

    // Interleave trials round-robin so slow drift (thermal throttling,
    // background load) lands on both sides equally.
    let mut request_ns = Vec::new();
    let mut ledger_ns = Vec::new();
    for _ in 0..TRIALS {
        request_ns.push(request_trial());
        ledger_ns.push(ledger_trial(&mut registry));
    }

    let request_median = median(&request_ns);
    let ledger_median = median(&ledger_ns);
    let overhead_pct = ledger_median / request_median * 100.0;
    println!("request compute: {request_median:>14.0} ns (median of {TRIALS})");
    println!("ledger ritual:   {ledger_median:>14.1} ns (median of {TRIALS})");
    println!("overhead:        {overhead_pct:>14.4} % (ceiling {OVERHEAD_CEILING_PCT}%)");

    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"observability_overhead\",\n");
    out.push_str(&format!("  \"workload\": \"{BENCH}\",\n"));
    out.push_str(&format!("  \"scale\": {},\n", SCALE.0));
    out.push_str(&format!("  \"instruction_budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"warmups\": {WARMUPS},\n"));
    out.push_str(&format!("  \"trials\": {TRIALS},\n"));
    out.push_str(&format!("  \"rituals_per_trial\": {RITUALS_PER_TRIAL},\n"));
    out.push_str(&format!(
        "  \"request_ns\": {{ \"median\": {:.0}, \"samples\": {} }},\n",
        request_median,
        json_array(&request_ns),
    ));
    out.push_str(&format!(
        "  \"ledger_ns_per_request\": {{ \"median\": {:.1}, \"samples\": {} }},\n",
        ledger_median,
        json_array(&ledger_ns),
    ));
    out.push_str(&format!("  \"overhead_pct\": {overhead_pct:.4},\n"));
    out.push_str(&format!(
        "  \"overhead_ceiling_pct\": {OVERHEAD_CEILING_PCT}\n"
    ));
    out.push_str("}\n");
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/BENCH_observability.json", out)
        .expect("write bench_results/BENCH_observability.json");
    println!("wrote bench_results/BENCH_observability.json");

    assert!(
        overhead_pct < OVERHEAD_CEILING_PCT,
        "span-ledger ritual costs {overhead_pct:.3}% of a request (ceiling {OVERHEAD_CEILING_PCT}%)"
    );
    println!("observability overhead within bounds");
}
