//! JIT comparison mode: native-trace JIT vs pure interpreter.
//!
//! Two measurements in one artifact:
//!
//! 1. **Hot-loop throughput** — purpose-built single-trace loops whose
//!    bodies are native-template material (integer ALU, multiplies,
//!    floating point, a mixed body). Each runs to completion under
//!    `--jit off` and `--jit on` at the `Machine` seam; the figure of
//!    merit is the per-workload median instr/s ratio. The JIT's
//!    acceptance gate is a >= 5x speedup on at least three of these.
//! 2. **Artifact identity** — every benchmark in the suite runs once per
//!    JIT mode through the full simulation stack and the serve-layer
//!    JSON report bytes are compared. The JIT is an execution strategy,
//!    not simulated state, so the sweep must come back byte-identical.
//!
//! Results land in `bench_results/BENCH_jit.json`. Run with:
//!
//! ```text
//! cargo run --release --bin bench_jit
//! ```

use std::time::Instant;

use powerchop_suite::bt::{BtConfig, JitMode, Machine, MachineEvent};
use powerchop_suite::gisa::{FReg, Program, ProgramBuilder, Reg};
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::serve::report_to_json;
use powerchop_suite::telemetry::export::JsonWriter;
use powerchop_suite::uarch::{config::CoreConfig, core::CoreModel};
use powerchop_suite::workloads::Scale;

const TRIALS: usize = 5;
/// Iterations per hot loop; with ~50-instruction bodies each workload
/// retires a few hundred million guest instructions per trial set.
const ITERS: i64 = 300_000;
/// Instruction budget for the per-benchmark identity sweep.
const SWEEP_BUDGET: u64 = 400_000;
const SWEEP_SCALE: Scale = Scale(0.2);

fn r(i: u8) -> Reg {
    Reg::new(i).expect("register index in range")
}

fn f(i: u8) -> FReg {
    FReg::new(i).expect("fp register index in range")
}

/// A loop of pure integer ALU traffic: the template fast path.
fn int_alu_loop() -> Program {
    let mut b = ProgramBuilder::new("jit_int_alu");
    let (a, c, d, i, n) = (r(1), r(2), r(3), r(4), r(5));
    b.li(a, 1).li(c, 0x5DEE_CE66).li(d, 7).li(i, 0).li(n, ITERS);
    let top = b.bind_label();
    b.addi(i, i, 1);
    for _ in 0..8 {
        b.add(a, a, c);
        b.xor(c, c, a);
        b.sub(d, a, c);
        b.or(a, a, d);
        b.and(c, c, a);
        b.addi(a, a, 13);
    }
    b.blt(i, n, top);
    b.halt();
    b.build().expect("well-formed")
}

/// Multiplies, shifts and compares over four independent accumulator
/// chains (keeping instruction-level parallelism available, as real
/// translated traces do).
fn int_mul_loop() -> Program {
    let mut b = ProgramBuilder::new("jit_int_mul");
    let (i, n, k) = (r(1), r(2), r(3));
    let accs = [r(4), r(5), r(6), r(7)];
    b.li(i, 0).li(n, ITERS).li(k, 0x9E37_79B9);
    for (j, a) in accs.into_iter().enumerate() {
        b.li(a, 3 + j as i64);
    }
    let top = b.bind_label();
    b.addi(i, i, 1);
    for _ in 0..4 {
        for a in accs {
            b.mul(a, a, k);
        }
        for a in accs {
            b.shr(a, a, i);
        }
        for a in accs {
            b.addi(a, a, 0x55);
        }
    }
    b.slt(k, accs[0], accs[1]);
    b.addi(k, k, 0x9E37_79B9);
    b.blt(i, n, top);
    b.halt();
    b.build().expect("well-formed")
}

/// Floating-point kernel: converts, multiplies, adds and fused madds
/// over six independent accumulator chains.
fn fp_loop() -> Program {
    let mut b = ProgramBuilder::new("jit_fp");
    let (i, n) = (r(1), r(2));
    b.li(i, 0).li(n, ITERS);
    b.fli(f(0), 1.000_000_3).fli(f(1), 0.999_999_1);
    let accs = [f(2), f(3), f(4), f(5), f(6), f(7)];
    for a in accs {
        b.fli(a, 1.5);
    }
    let top = b.bind_label();
    b.addi(i, i, 1);
    b.fcvt(f(8), i);
    for _ in 0..3 {
        for a in accs {
            b.fmul(a, a, f(0));
        }
        for a in accs {
            b.fadd(a, a, f(1));
        }
        for a in accs {
            b.fmadd(a, a, f(1), f(8));
        }
    }
    b.blt(i, n, top);
    b.halt();
    b.build().expect("well-formed")
}

/// A mixed int/fp body closer to real translated traces.
fn mixed_loop() -> Program {
    let mut b = ProgramBuilder::new("jit_mixed");
    let (a, c, i, n) = (r(1), r(2), r(3), r(4));
    b.li(a, 1).li(c, 0x0BAD_F00D).li(i, 0).li(n, ITERS);
    b.fli(f(1), 1.000_001);
    let top = b.bind_label();
    b.addi(i, i, 1);
    for _ in 0..5 {
        b.add(a, a, c);
        b.mul(c, c, a);
        b.shr(a, a, i);
        b.xor(a, a, c);
        b.fcvt(f(0), a);
        b.fmul(f(2), f(0), f(1));
        b.fmadd(f(3), f(2), f(1), f(0));
        b.fadd(f(1), f(3), f(1));
        b.slt(c, c, a);
        b.addi(c, c, 17);
    }
    b.blt(i, n, top);
    b.halt();
    b.build().expect("well-formed")
}

/// Runs `program` to completion at the `Machine` seam and returns
/// (instr/s, retired).
fn one_trial(program: &Program, mode: JitMode) -> (f64, u64) {
    let mut core = CoreModel::new(&CoreConfig::server());
    let mut machine = Machine::new(program, BtConfig::default());
    machine.set_jit_mode(mode);
    let start = Instant::now();
    while !matches!(
        machine.step(&mut core).expect("no guest faults"),
        MachineEvent::Halted
    ) {}
    let secs = start.elapsed().as_secs_f64();
    (machine.retired() as f64 / secs, machine.retired())
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[sorted.len() / 2]
}

struct HotResult {
    name: &'static str,
    interp: f64,
    jit: f64,
    retired: u64,
}

fn measure_hot(name: &'static str, program: &Program) -> HotResult {
    // One warmup per mode, then interleaved trials so drift lands on
    // both modes equally.
    one_trial(program, JitMode::Off);
    one_trial(program, JitMode::On);
    let (mut off, mut on) = (Vec::new(), Vec::new());
    let mut retired = 0;
    for _ in 0..TRIALS {
        off.push(one_trial(program, JitMode::Off).0);
        let (rate, n) = one_trial(program, JitMode::On);
        on.push(rate);
        retired = n;
    }
    HotResult {
        name,
        interp: median(&off),
        jit: median(&on),
        retired,
    }
}

/// Runs every suite benchmark once per JIT mode through the full stack
/// and compares the serve-layer report bytes. Returns (workloads, all
/// identical).
fn identity_sweep() -> (u64, bool) {
    let mut identical = true;
    let mut count = 0u64;
    for bench in powerchop_suite::workloads::all() {
        let program = bench.program(SWEEP_SCALE);
        let run = |mode: JitMode| {
            let mut cfg = RunConfig::for_kind(bench.core_kind());
            cfg.max_instructions = SWEEP_BUDGET;
            cfg.jit = mode;
            let report =
                run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes");
            report_to_json(&report)
        };
        let off = run(JitMode::Off);
        let on = run(JitMode::On);
        if off != on {
            identical = false;
            eprintln!("ARTIFACT DIVERGENCE: {}", bench.name());
        }
        count += 1;
    }
    (count, identical)
}

fn main() {
    let hot_programs = [
        ("int_alu", int_alu_loop()),
        ("int_mul", int_mul_loop()),
        ("fp", fp_loop()),
        ("mixed", mixed_loop()),
    ];
    let mut hot = Vec::new();
    for (name, program) in &hot_programs {
        let res = measure_hot(name, program);
        println!(
            "{:<10} interp {:>12.0} instr/s   jit {:>12.0} instr/s   {:.2}x  ({} retired)",
            res.name,
            res.interp,
            res.jit,
            res.jit / res.interp,
            res.retired
        );
        hot.push(res);
    }

    println!("sweeping the suite for artifact identity (budget {SWEEP_BUDGET}) ...");
    let sweep_start = Instant::now();
    let (workloads, identical) = identity_sweep();
    println!(
        "{workloads} workloads, artifacts identical: {identical} ({:.1}s)",
        sweep_start.elapsed().as_secs_f64()
    );

    let at_least_5x = hot.iter().filter(|h| h.jit / h.interp >= 5.0).count();

    let mut w = JsonWriter::object();
    w.field_str("benchmark", "jit_vs_interpreter");
    powerchop_suite::bench_support::record_host_topology(&mut w);
    w.field_u64("trials", TRIALS as u64);
    {
        let mut loops = JsonWriter::array();
        for h in &hot {
            let mut entry = JsonWriter::object();
            entry.field_str("workload", h.name);
            entry.field_u64("retired", h.retired);
            entry.field_f64("interp_instr_per_sec", h.interp, 0);
            entry.field_f64("jit_instr_per_sec", h.jit, 0);
            entry.field_f64("speedup", h.jit / h.interp, 3);
            loops.push_raw(&entry.finish());
        }
        w.field_raw("hot_loops", &loops.finish());
    }
    w.field_u64("workloads_at_5x_or_better", at_least_5x as u64);
    w.field_u64("sweep_workloads", workloads);
    w.field_u64("sweep_instruction_budget", SWEEP_BUDGET);
    w.field_bool("artifacts_byte_identical", identical);
    let out = w.finish();

    powerchop_suite::telemetry::export::validate_json(&out).expect("bench JSON is well-formed");
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/BENCH_jit.json", format!("{out}\n"))
        .expect("write bench_results/BENCH_jit.json");
    println!("wrote bench_results/BENCH_jit.json");

    assert!(identical, "JIT-on and JIT-off artifacts must be identical");
}
