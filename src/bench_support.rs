//! Shared helpers for the `bench_*` binaries.

use powerchop_telemetry::export::JsonWriter;

/// CPUs visible to this process (affinity- and cgroup-aware where the
/// platform reports it), clamped to 1 when the query fails.
#[must_use]
pub fn available_cpus() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}

/// Appends the host-topology block benchmark artifacts carry — CPU
/// count, architecture, OS — plus a `"warning":"single_cpu_host"` field
/// when the process can only see one CPU: parallel speedups and
/// wall-clock comparisons measured there say nothing about multi-core
/// hosts, and downstream tooling should treat the numbers as suspect.
pub fn record_host_topology(w: &mut JsonWriter) {
    let cpus = available_cpus();
    let mut host = JsonWriter::object();
    host.field_u64("available_cpus", cpus);
    host.field_str("arch", std::env::consts::ARCH);
    host.field_str("os", std::env::consts::OS);
    w.field_raw("host", &host.finish());
    if cpus == 1 {
        w.field_str("warning", "single_cpu_host");
    }
}
