//! Umbrella crate for the PowerChop reproduction workspace.
//!
//! Re-exports the public APIs of every crate so examples and integration
//! tests can use a single dependency. See the individual crates for
//! documentation:
//!
//! - [`powerchop`] — the paper's contribution (HTB, PVT, CDE, gating)
//! - [`gisa`] — the guest ISA and program representation
//! - [`bt`] — the binary-translation subsystem
//! - [`uarch`] — microarchitectural unit models
//! - [`faults`] — deterministic fault injection
//! - [`power`] — the power/energy model
//! - [`telemetry`] — flight-recorder tracing, metrics and exporters
//! - [`workloads`] — the synthetic benchmark suites
//! - [`exec`] — the work-stealing job pool fan-out commands run on
//! - [`resilience`] — retry, circuit-breaker, deadline-budget and chaos primitives
//! - [`durable`] — the write-ahead intent journal and persistent result cache
//! - [`serve`] — the TCP daemon (NDJSON protocol, result cache, backpressure)
//! - [`cli`] — the command-line interface (argument parsing and commands)

pub mod bench_support;

pub use powerchop;
pub use powerchop_bt as bt;
pub use powerchop_cli as cli;
pub use powerchop_durable as durable;
pub use powerchop_exec as exec;
pub use powerchop_faults as faults;
pub use powerchop_gisa as gisa;
pub use powerchop_power as power;
pub use powerchop_resilience as resilience;
pub use powerchop_serve as serve;
pub use powerchop_telemetry as telemetry;
pub use powerchop_uarch as uarch;
pub use powerchop_workloads as workloads;
