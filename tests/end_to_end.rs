//! Cross-crate integration tests: the full pipeline from guest programs
//! through the BT layer, timing model, PowerChop and the power model.

use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::uarch::config::CoreKind;
use powerchop_suite::workloads::{self, Scale};

/// A short but representative configuration for integration testing.
fn test_cfg(kind: CoreKind) -> RunConfig {
    let mut cfg = RunConfig::for_kind(kind);
    cfg.max_instructions = 1_200_000;
    cfg
}

const TEST_SCALE: Scale = Scale(0.15);

#[test]
fn every_benchmark_runs_under_every_manager() {
    for b in workloads::all() {
        let cfg = test_cfg(b.core_kind());
        let program = b.program(Scale(0.05));
        for kind in [
            ManagerKind::FullPower,
            ManagerKind::PowerChop,
            ManagerKind::MinimalPower,
            ManagerKind::TimeoutVpu {
                timeout_cycles: 20_000,
            },
        ] {
            let r = run_program(&program, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} under {kind:?} faulted: {e}", b.name()));
            assert!(r.instructions > 0, "{} retired nothing", b.name());
            assert!(r.cycles > 0);
            assert!(r.energy.total_j > 0.0);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let b = workloads::by_name("gobmk").unwrap();
    let cfg = test_cfg(CoreKind::Server);
    let program = b.program(TEST_SCALE);
    let a = run_program(&program, ManagerKind::PowerChop, &cfg).unwrap();
    let c = run_program(&program, ManagerKind::PowerChop, &cfg).unwrap();
    assert_eq!(a.cycles, c.cycles);
    assert_eq!(a.instructions, c.instructions);
    assert_eq!(a.stats, c.stats);
    assert_eq!(a.switches, c.switches);
    assert_eq!(a.energy.total_j.to_bits(), c.energy.total_j.to_bits());
}

#[test]
fn powerchop_saves_leakage_with_bounded_slowdown() {
    for name in ["hmmer", "namd", "msn"] {
        let b = workloads::by_name(name).unwrap();
        let cfg = test_cfg(b.core_kind());
        let program = b.program(TEST_SCALE);
        let full = run_program(&program, ManagerKind::FullPower, &cfg).unwrap();
        let chop = run_program(&program, ManagerKind::PowerChop, &cfg).unwrap();
        assert!(
            chop.leakage_reduction_vs(&full) > 0.05,
            "{name}: no leakage saved"
        );
        assert!(
            chop.slowdown_vs(&full) < 0.12,
            "{name}: slowdown {:.1}% out of band",
            100.0 * chop.slowdown_vs(&full)
        );
    }
}

#[test]
fn power_ordering_full_chop_minimal() {
    let b = workloads::by_name("hmmer").unwrap();
    let cfg = test_cfg(CoreKind::Server);
    let program = b.program(TEST_SCALE);
    let full = run_program(&program, ManagerKind::FullPower, &cfg).unwrap();
    let chop = run_program(&program, ManagerKind::PowerChop, &cfg).unwrap();
    let min = run_program(&program, ManagerKind::MinimalPower, &cfg).unwrap();
    // Leakage power: minimal <= powerchop <= full.
    assert!(min.energy.leakage_power_w <= chop.energy.leakage_power_w + 1e-9);
    assert!(chop.energy.leakage_power_w <= full.energy.leakage_power_w + 1e-9);
    // Performance: full >= powerchop >= minimal-ish. hmmer is almost
    // fully gateable, so PowerChop converges to the minimal policy and
    // may trail it by its (small) profiling overhead.
    assert!(full.ipc() >= chop.ipc() * 0.999);
    assert!(chop.ipc() >= min.ipc() * 0.97);
}

#[test]
fn mobile_and_server_use_their_design_points() {
    let msn = workloads::by_name("msn").unwrap();
    let cfg = test_cfg(msn.core_kind());
    assert_eq!(cfg.core.kind, CoreKind::Mobile);
    let program = msn.program(TEST_SCALE);
    let r = run_program(&program, ManagerKind::FullPower, &cfg).unwrap();
    assert_eq!(r.core_kind, CoreKind::Mobile);
    // Mobile core leakage is far below the server's.
    assert!(r.energy.leakage_power_w < 1.0);
}

#[test]
fn timeout_baseline_gates_but_never_emulates() {
    let b = workloads::by_name("namd").unwrap();
    let cfg = test_cfg(CoreKind::Server);
    let program = b.program(TEST_SCALE);
    let r = run_program(
        &program,
        ManagerKind::TimeoutVpu {
            timeout_cycles: 20_000,
        },
        &cfg,
    )
    .unwrap();
    // Non-semantic gating: all vector ops ran natively.
    assert_eq!(r.stats.vec_emulated, 0);
    assert_eq!(r.stats.simd_committed, r.stats.vec_ops);
}

#[test]
fn drowsy_baseline_saves_mlc_leakage_without_losing_state() {
    let b = workloads::by_name("gems").unwrap();
    let cfg = test_cfg(CoreKind::Server);
    let program = b.program(TEST_SCALE);
    let full = run_program(&program, ManagerKind::FullPower, &cfg).unwrap();
    let drowsy = run_program(
        &program,
        ManagerKind::DrowsyMlc {
            period_cycles: 4_000,
        },
        &cfg,
    )
    .unwrap();
    // MLC leakage *power* drops; other units' leakage rate is untouched
    // (energies differ slightly because run lengths differ).
    let rate = |leak_j: f64, r: &powerchop_suite::powerchop::RunReport| leak_j / r.energy.seconds;
    assert!(rate(drowsy.energy.leakage.mlc, &drowsy) < rate(full.energy.leakage.mlc, &full) * 0.9);
    let vpu_rate_delta =
        (rate(drowsy.energy.leakage.vpu, &drowsy) - rate(full.energy.leakage.vpu, &full)).abs();
    assert!(vpu_rate_delta < 1e-6);
    // Wake penalties exist but stay small.
    assert!(drowsy.stats.mlc_drowsy_wakes > 0);
    assert!(drowsy.slowdown_vs(&full) < 0.10);
    // No way-gating happened: capacity (and therefore hit behaviour) is
    // preserved.
    assert_eq!(drowsy.switches.total(), 0);
    assert_eq!(drowsy.gated.mlc_one, 0);
}

#[test]
fn powerchop_emulates_vector_ops_while_gated() {
    let b = workloads::by_name("namd").unwrap();
    let cfg = test_cfg(CoreKind::Server);
    let program = b.program(TEST_SCALE);
    let r = run_program(&program, ManagerKind::PowerChop, &cfg).unwrap();
    // namd's sparse vector ops execute via the BT's scalar code paths.
    assert!(
        r.stats.vec_emulated > 0,
        "gated vector ops must be emulated"
    );
    assert_eq!(
        r.stats.vec_emulated + r.stats.simd_committed,
        r.stats.vec_ops
    );
}
