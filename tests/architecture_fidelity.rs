//! Fidelity checks against the paper's fixed parameters and the key
//! behavioural claims of its motivation sections.

use powerchop_suite::bt::{BtConfig, Machine};
use powerchop_suite::gisa::{ProgramBuilder, Reg};
use powerchop_suite::powerchop::phase::{SIGNATURE_LEN, WINDOW_TRANSLATIONS};
use powerchop_suite::powerchop::{HotTranslationBuffer, PolicyVectorTable};
use powerchop_suite::uarch::cache::MlcWayState;
use powerchop_suite::uarch::config::CoreConfig;
use powerchop_suite::uarch::core::CoreModel;

#[test]
fn paper_constants() {
    assert_eq!(WINDOW_TRANSLATIONS, 1000);
    assert_eq!(SIGNATURE_LEN, 4);
    assert_eq!(HotTranslationBuffer::paper_default().storage_bytes(), 1024);
    assert_eq!(PolicyVectorTable::paper_default().storage_bytes(), 264);
    let s = CoreConfig::server();
    assert_eq!(s.gating.mlc_switch, 50);
    assert_eq!(s.gating.vpu_switch, 30);
    assert_eq!(s.gating.bpu_switch, 20);
    assert_eq!(s.gating.vpu_save_restore, 500);
}

#[test]
fn mlc_way_states_match_table1_capacities() {
    // Server: 1024 KiB 8-way -> 512 KiB 4-way or 128 KiB 1-way.
    let s = CoreConfig::server();
    let per_way = s.mlc.size_kib / s.mlc.ways;
    assert_eq!(per_way * MlcWayState::Half.active_ways(s.mlc.ways), 512);
    assert_eq!(per_way * MlcWayState::One.active_ways(s.mlc.ways), 128);
    // Mobile: 2048 KiB 8-way -> 1024 KiB or 256 KiB.
    let m = CoreConfig::mobile();
    let per_way = m.mlc.size_kib / m.mlc.ways;
    assert_eq!(per_way * MlcWayState::Half.active_ways(m.mlc.ways), 1024);
    assert_eq!(per_way * MlcWayState::One.active_ways(m.mlc.ways), 256);
}

/// The hybrid machine must produce identical architectural results no
/// matter how the BT layer schedules interpretation vs translation.
#[test]
fn translation_is_architecturally_transparent() {
    let r = |i| Reg::new(i).unwrap();
    let mut b = ProgramBuilder::new("transparency");
    b.li(r(0), 0).li(r(1), 40_000).li(r(2), 0);
    let top = b.bind_label();
    b.mul(r(3), r(0), r(0));
    b.add(r(2), r(2), r(3));
    b.addi(r(0), r(0), 1);
    b.blt(r(0), r(1), top);
    b.halt();
    let program = b.build().unwrap();

    let mut results = Vec::new();
    for threshold in [1u32, 16, 1024, u32::MAX] {
        let cfg = CoreConfig::server();
        let mut core = CoreModel::new(&cfg);
        let mut machine = Machine::new(
            &program,
            BtConfig {
                hot_threshold: threshold,
                ..BtConfig::default()
            },
        );
        machine.run(&mut core, u64::MAX).unwrap();
        results.push((machine.cpu().int_reg(r(2)), machine.retired()));
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1], "BT scheduling must not change semantics");
    }
}

/// Motivation §III-B: the BPU and MLC stay *active* even in phases where
/// they are not *critical* — activity cannot drive gating decisions.
#[test]
fn high_activity_is_not_criticality() {
    use powerchop_suite::workloads::{by_name, Scale};
    let b = by_name("canneal").unwrap(); // random branches + streaming
    let program = b.program(Scale(0.1));
    let cfg = CoreConfig::server();
    let mut core = CoreModel::new(&cfg);
    let mut machine = Machine::new(&program, BtConfig::default());
    machine.run(&mut core, 800_000).unwrap();
    let stats = core.stats();
    // Branches and MLC accesses are frequent...
    assert!(
        stats.branches * 20 > stats.instructions,
        "branches are frequent"
    );
    assert!(
        stats.mlc_accesses * 200 > stats.instructions,
        "MLC is active"
    );
    // ...yet the large BPU mispredicts random branches as badly as the
    // small one would, and the MLC misses its streaming accesses: both
    // are active but non-critical, exactly the paper's point.
    assert!(
        stats.mispredicts * 6 > stats.branches,
        "random branches defeat the predictor"
    );
    assert!(
        stats.mlc_hits * 2 < stats.mlc_accesses,
        "streaming defeats the MLC"
    );
}
