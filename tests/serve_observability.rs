//! Observability integration tests for the `powerchop-serve` daemon.
//!
//! Exercises the request-scoped tracing layer over a live loopback
//! socket, the same way `tests/serve.rs` drives the protocol:
//!
//! - spans-enabled runs (access log on, flight recorder attached) are
//!   bit-identical to direct in-process runs — observability never
//!   changes an answer;
//! - trace ids are deterministic under `--seed`, and computed by the
//!   documented SplitMix64 stream;
//! - the log2 histogram's quantile estimator tracks a brute-force
//!   sorted-rank quantile to within bucket resolution;
//! - every access-log record — including the ones malformed requests
//!   leave behind — parses through the RFC 8259 validator and carries
//!   the full seven-phase span breakdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use powerchop_suite::cli::commands::report_to_json;
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::serve::json::Json;
use powerchop_suite::serve::{strip_trace_id, Server, ServerConfig};
use powerchop_suite::telemetry::{format_trace_id, trace_id, validate_json, Histogram, Phase};
use powerchop_suite::workloads::Scale;

const BUDGET: u64 = 200_000;
const SCALE: f64 = 0.05;

/// A unique temp path per call so parallel tests never share a log.
fn temp_log_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "powerchop-observability-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

struct Daemon {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn start(cfg: ServerConfig) -> Daemon {
    let server = Server::bind(&cfg).expect("daemon binds");
    let addr = server.local_addr();
    let thread = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        thread: Some(thread),
    }
}

impl Daemon {
    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(self.addr).expect("daemon accepts connections");
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("read timeout sets");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("stream clones")),
            writer: stream,
        }
    }

    fn shutdown(mut self) {
        let mut conn = self.connect();
        let reply = conn.request(r#"{"op":"shutdown"}"#);
        assert!(reply.contains("\"draining\":true"), "reply: {reply}");
        drop(conn);
        self.thread
            .take()
            .expect("thread handle present")
            .join()
            .expect("server thread joins")
            .expect("server exits cleanly");
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("request writes");
        self.writer.flush().expect("request flushes");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply reads");
        reply.trim_end().to_owned()
    }
}

fn run_line(bench: &str) -> String {
    format!(r#"{{"op":"run","bench":"{bench}","budget":{BUDGET},"scale":{SCALE}}}"#)
}

fn direct_report(bench: &str) -> String {
    let b = powerchop_suite::workloads::by_name(bench).expect("known benchmark");
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = BUDGET;
    let program = b.program(Scale(SCALE));
    let report = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes");
    report_to_json(&report)
}

/// The trace id a reply envelope carries.
fn reply_trace_id(reply: &str) -> String {
    Json::parse(reply)
        .expect("reply parses")
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("reply carries a trace id")
        .to_owned()
}

#[test]
fn traced_runs_over_the_wire_are_bit_identical_to_direct_runs() {
    // Access log on => every run carries an attached flight recorder.
    let log = temp_log_path("identity");
    let daemon = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        access_log: Some(log.display().to_string()),
        slow_ms: Some(0),
        seed: Some(42),
        ..ServerConfig::default()
    });
    let mut conn = daemon.connect();

    let expected = direct_report("hmmer");
    let reply = conn.request(&run_line("hmmer"));
    assert_eq!(
        strip_trace_id(&reply),
        format!(r#"{{"ok":true,"op":"run","cached":false,"report":{expected}}}"#),
        "a traced run must embed the exact direct-run bytes"
    );

    // Sweeps go through the same traced worker path.
    let sweep = conn.request(&format!(
        r#"{{"op":"sweep","benches":["hmmer"],"budget":{BUDGET},"scale":{SCALE}}}"#
    ));
    assert!(
        sweep.contains(&format!(
            r#"{{"bench":"hmmer","ok":true,"cached":true,"report":{expected}}}"#
        )),
        "traced sweep rows embed the same bytes: {sweep}"
    );

    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_file(&log);
}

#[test]
fn trace_ids_are_deterministic_under_a_fixed_seed() {
    let seed = 0x00C0_FFEE_u64;
    let observed: Vec<Vec<String>> = (0..2)
        .map(|_| {
            let daemon = start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                jobs: Some(1),
                seed: Some(seed),
                ..ServerConfig::default()
            });
            let mut conn = daemon.connect();
            let ids: Vec<String> = (0..3)
                .map(|_| reply_trace_id(&conn.request(r#"{"op":"status"}"#)))
                .collect();
            drop(conn);
            daemon.shutdown();
            ids
        })
        .collect();
    assert_eq!(
        observed[0], observed[1],
        "two daemons with the same seed mint the same trace-id sequence"
    );
    // And the sequence is exactly the documented SplitMix64 stream.
    for (n, id) in observed[0].iter().enumerate() {
        assert_eq!(
            *id,
            format_trace_id(trace_id(seed, n as u64)),
            "trace id #{n} must come from trace_id(seed, n)"
        );
    }
    assert_eq!(observed[0][0].len(), 16, "ids are 16 lowercase hex digits");
    assert!(observed[0][0].chars().all(|c| c.is_ascii_hexdigit()));
}

/// The log2 bucket index a value lands in: bucket 0 for zero, bucket
/// `i >= 1` for `[2^(i-1), 2^i)`.
fn bucket_of(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

#[test]
fn histogram_quantiles_track_brute_force_within_bucket_resolution() {
    let mut h = Histogram::default();
    // A deterministic, lumpy sample set: zeros, a dense low mode and a
    // sparse heavy tail — the shape access latencies actually have.
    let mut samples: Vec<u64> = Vec::new();
    let mut x = 0x9E37_79B9_7F4A_7C15_u64;
    for i in 0..2_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = match i % 10 {
            0 => 0,
            1..=7 => x % 50,
            8 => 50 + x % 1_000,
            _ => 10_000 + x % 100_000,
        };
        samples.push(v);
        h.observe(v);
    }
    samples.sort_unstable();
    for q in [0.5, 0.9, 0.99, 0.999] {
        // Brute force: the sample at the ceil(q * n) rank.
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
        let truth = samples[rank];
        let estimate = h.quantile(q);
        assert!(
            estimate.is_finite() && estimate >= 0.0,
            "q={q}: estimate {estimate} must be a finite non-negative number"
        );
        // Log2 buckets can only promise the right power-of-two band.
        let est_bucket = bucket_of(estimate.round() as u64);
        assert!(
            est_bucket.abs_diff(bucket_of(truth)) <= 1,
            "q={q}: estimate {estimate} (bucket {est_bucket}) strays from \
             true quantile {truth} (bucket {})",
            bucket_of(truth)
        );
    }
}

#[test]
fn access_log_records_survive_fuzz_and_carry_full_span_breakdowns() {
    let log = temp_log_path("fuzz");
    let daemon = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        max_request_bytes: 4096,
        access_log: Some(log.display().to_string()),
        // Threshold zero promotes every record to the slow/detailed
        // form, so the compute-attribution fields are testable.
        slow_ms: Some(0),
        seed: Some(7),
        ..ServerConfig::default()
    });
    let mut conn = daemon.connect();

    let run_reply = conn.request(&run_line("hmmer"));
    let run_trace = reply_trace_id(&run_reply);
    let status_reply = conn.request(r#"{"op":"status"}"#);
    assert!(status_reply.contains("\"uptime_ms\":"), "{status_reply}");
    assert!(
        status_reply.contains("\"inflight_requests\":"),
        "{status_reply}"
    );

    // A fuzz sweep of malformed lines: every one must still produce a
    // valid traced access record.
    let fuzz: &[&str] = &[
        "",
        "   ",
        "{",
        "nonsense",
        "[1,2,3]",
        "{}",
        r#"{"op":42}"#,
        r#"{"op":"warp-drive"}"#,
        r#"{"op":"run","bench":"doom"}"#,
    ];
    for line in fuzz {
        let reply = conn.request(line);
        assert!(reply.contains("\"ok\":false"), "{line:?}: {reply}");
        assert!(
            reply.contains("\"trace_id\":\""),
            "{line:?}: even error replies carry a trace id: {reply}"
        );
    }
    drop(conn);
    daemon.shutdown();

    let text = std::fs::read_to_string(&log).expect("access log exists");
    let records: Vec<Json> = text
        .lines()
        .map(|line| {
            validate_json(line).unwrap_or_else(|e| {
                panic!("access record fails RFC 8259 validation ({e}): {line}")
            });
            Json::parse(line).expect("validated record parses")
        })
        .collect();
    // One record per protocol request: run + status + fuzz + shutdown.
    assert_eq!(records.len(), 2 + fuzz.len() + 1, "log:\n{text}");

    let field_str = |r: &Json, key: &str| {
        r.get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .unwrap_or_default()
    };
    let run_record = records
        .iter()
        .find(|r| field_str(r, "op") == "run")
        .expect("run record logged");
    assert_eq!(
        field_str(run_record, "trace_id"),
        run_trace,
        "the access record and the wire reply share one trace id"
    );
    assert_eq!(
        run_record.get("status").and_then(Json::as_u64),
        Some(200),
        "log:\n{text}"
    );
    let spans = run_record.get("spans").expect("run record carries spans");
    for phase in Phase::ALL {
        let key = format!("{}_us", phase.label());
        assert!(
            spans.get(&key).and_then(Json::as_u64).is_some(),
            "span phase {key} missing from record: {text}"
        );
    }
    assert_eq!(
        run_record.get("slow").and_then(Json::as_bool),
        Some(true),
        "--slow-ms 0 promotes every record"
    );
    assert!(
        run_record
            .get("compute_cycles")
            .and_then(Json::as_u64)
            .is_some_and(|c| c > 0),
        "slow run records attribute simulated cycles: {text}"
    );
    assert!(
        run_record
            .get("trace_events")
            .and_then(Json::as_u64)
            .is_some_and(|n| n > 0),
        "the attached flight recorder captured events: {text}"
    );

    // Malformed lines are logged as op="malformed" with a 400 status
    // and the same seven-phase span object.
    let malformed: Vec<&Json> = records
        .iter()
        .filter(|r| field_str(r, "op") == "malformed")
        .collect();
    assert_eq!(malformed.len(), fuzz.len(), "log:\n{text}");
    for r in malformed {
        let status = r.get("status").and_then(Json::as_u64).unwrap_or(0);
        assert!(
            status == 400 || status == 404,
            "malformed records carry the typed error status, got {status}"
        );
        let spans = r.get("spans").expect("malformed records carry spans");
        assert!(spans.get("parse_us").and_then(Json::as_u64).is_some());
    }

    // Every record has a distinct trace id — one id per request.
    let mut ids: Vec<String> = records.iter().map(|r| field_str(r, "trace_id")).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), before, "trace ids never repeat: {text}");

    let _ = std::fs::remove_file(&log);
}
