//! High-concurrency integration tests for the epoll event-loop core of
//! `powerchop-serve`.
//!
//! The headline test holds 300 idle connections open on one daemon —
//! far past what a thread-per-connection design could carry — while
//! honest clients drive mixed run/status/malformed traffic to
//! completion through the same event loop. The guarantees under test:
//!
//! - 256+ concurrent connections are admitted and held without a 503
//!   (idle sockets cost one epoll registration, not a thread);
//! - every run reply is bit-identical to a direct in-process run,
//!   cached or fresh, regardless of concurrency;
//! - replies never interleave across connections: each client reads
//!   exactly its own replies, in its own request order;
//! - a slow consumer that stops reading is shed with a typed 408 once
//!   its unflushed replies exceed `--max-outbox-bytes`, bounding the
//!   daemon's per-connection memory;
//! - the new event-loop counters are pre-seeded on `/metrics` from
//!   boot, so dashboards never see a gap.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use powerchop_suite::cli::commands::report_to_json;
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::serve::{strip_trace_id, Server, ServerConfig};
use powerchop_suite::telemetry::validate_json;
use powerchop_suite::workloads::Scale;

const BUDGET: u64 = 200_000;
const SCALE: f64 = 0.05;

/// Idle connections held open for the duration of the active phase.
/// Together with the active clients this puts the daemon comfortably
/// past the 256-connection bar.
const IDLE_HOLDERS: usize = 300;

/// Concurrent active clients driving mixed traffic.
const ACTIVE_CLIENTS: usize = 12;

/// Requests each active client issues.
const REQUESTS_PER_CLIENT: usize = 8;

struct Daemon {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn start(cfg: ServerConfig) -> Daemon {
    let server = Server::bind(&cfg).expect("daemon binds");
    let addr = server.local_addr();
    let thread = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        thread: Some(thread),
    }
}

impl Daemon {
    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(self.addr).expect("daemon accepts connections");
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("read timeout sets");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("stream clones")),
            writer: stream,
        }
    }

    fn shutdown(mut self) {
        let mut conn = self.connect();
        let reply = conn.request(r#"{"op":"shutdown"}"#);
        assert!(reply.contains("\"draining\":true"), "reply: {reply}");
        drop(conn);
        self.thread
            .take()
            .expect("thread handle present")
            .join()
            .expect("server thread joins")
            .expect("server exits cleanly");
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("request writes");
        self.writer.flush().expect("request flushes");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply reads");
        assert!(reply.ends_with('\n'), "replies are newline-delimited");
        reply.trim_end().to_owned()
    }
}

/// The exact report bytes a serve reply must embed for `bench` at the
/// test knobs, computed by a direct in-process run.
fn direct_report(bench: &str) -> String {
    let b = powerchop_suite::workloads::by_name(bench).expect("known benchmark");
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = BUDGET;
    let program = b.program(Scale(SCALE));
    let report = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes");
    report_to_json(&report)
}

fn run_line(bench: &str) -> String {
    format!(r#"{{"op":"run","bench":"{bench}","budget":{BUDGET},"scale":{SCALE}}}"#)
}

/// Scrapes one numeric sample from the daemon's HTTP `/metrics`.
fn scrape(addr: SocketAddr, name: &str) -> Option<f64> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .ok()?;
    let mut body = String::new();
    BufReader::new(stream).read_to_string(&mut body).ok()?;
    body.lines().find_map(|line| {
        line.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|rest| rest.trim().parse().ok())
    })
}

#[test]
fn daemon_sustains_300_plus_concurrent_connections_with_bit_identical_replies() {
    let daemon = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        max_connections: 400,
        // The idle holders stay silent for the whole active phase; a
        // short read deadline would shed them as slow-loris clients.
        read_timeout_ms: 300_000,
        ..ServerConfig::default()
    });

    // Phase 1: park a sea of idle connections. Every one must be
    // admitted — an idle socket is one epoll registration, not a
    // thread, and the 400-slot gate has room for all of them.
    let holders: Vec<TcpStream> = (0..IDLE_HOLDERS)
        .map(|i| {
            let s = TcpStream::connect(daemon.addr)
                .unwrap_or_else(|e| panic!("idle holder {i} refused: {e}"));
            s.set_read_timeout(Some(Duration::from_millis(50)))
                .expect("read timeout sets");
            s
        })
        .collect();

    // No holder may have been shed with a 503: an admitted-and-idle
    // connection has nothing to read (a shed one has a typed error
    // line followed by EOF).
    for (i, holder) in holders.iter().enumerate().step_by(37) {
        let mut probe = holder.try_clone().expect("holder clones");
        let mut buf = [0u8; 256];
        match probe.read(&mut buf) {
            Ok(n) => panic!(
                "idle holder {i} was shed: {:?}",
                String::from_utf8_lossy(&buf[..n])
            ),
            Err(e) => assert!(
                matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
                "idle holder {i}: unexpected error {e}"
            ),
        }
    }

    // Phase 2: with all 300 holders still parked, active clients drive
    // mixed traffic through the same loop. Each thread checks its own
    // replies in order, so any cross-connection interleave or tear
    // fails the matching request's assertion.
    let roster = ["hmmer", "namd", "gobmk"];
    let expected: Vec<String> = roster.iter().map(|b| direct_report(b)).collect();
    let runs_ok = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for id in 0..ACTIVE_CLIENTS {
            let expected = &expected;
            let runs_ok = &runs_ok;
            let daemon = &daemon;
            scope.spawn(move || {
                let mut conn = daemon.connect();
                for j in 0..REQUESTS_PER_CLIENT {
                    match (id + j) % 5 {
                        // Bit-identical run replies, fresh or cached.
                        0..=2 => {
                            let k = (id + j) % roster.len();
                            let reply = conn.request(&run_line(roster[k]));
                            validate_json(&reply)
                                .unwrap_or_else(|e| panic!("client {id}: bad JSON ({e}): {reply}"));
                            let untraced = strip_trace_id(&reply);
                            let fresh = format!(
                                r#"{{"ok":true,"op":"run","cached":false,"report":{}}}"#,
                                expected[k]
                            );
                            let cached = format!(
                                r#"{{"ok":true,"op":"run","cached":true,"report":{}}}"#,
                                expected[k]
                            );
                            assert!(
                                untraced == fresh || untraced == cached,
                                "client {id} req {j}: run reply diverged: {reply}"
                            );
                            runs_ok.fetch_add(1, Ordering::SeqCst);
                        }
                        3 => {
                            let reply = conn.request(r#"{"op":"status"}"#);
                            assert!(reply.contains("\"ok\":true"), "client {id}: {reply}");
                        }
                        // Malformed traffic gets a typed 400 and the
                        // connection survives for the next request.
                        _ => {
                            let reply = conn.request(r#"{"op":"no-such-op"}"#);
                            validate_json(&reply).expect("typed error is valid JSON");
                            assert!(reply.contains("\"code\":400"), "client {id}: {reply}");
                        }
                    }
                }
            });
        }
    });
    assert!(
        runs_ok.load(Ordering::SeqCst) >= ACTIVE_CLIENTS as u64 * 3,
        "the active phase must complete real runs under idle load"
    );

    // Phase 3: the holders were held through the whole active phase —
    // and they still work as protocol connections.
    for holder in holders.iter().step_by(149) {
        let stream = holder.try_clone().expect("holder clones");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout resets");
        let mut conn = Conn {
            reader: BufReader::new(stream.try_clone().expect("stream clones")),
            writer: stream,
        };
        let reply = conn.request(r#"{"op":"health"}"#);
        assert!(
            reply.contains("\"ok\":true"),
            "held connection serves: {reply}"
        );
    }

    // The event loop did real multiplexing: wakeups were counted, and
    // no idle-only connection tripped the rejection gate.
    let wakeups = scrape(daemon.addr, "serve_epoll_wakeups_total").expect("wakeups scraped");
    assert!(wakeups >= 1.0, "epoll wakeups counted: {wakeups}");
    let rejected = scrape(daemon.addr, "serve_conn_rejected_total").expect("rejected scraped");
    assert!(
        rejected == 0.0,
        "idle-only load below the gate must never see a 503: {rejected}"
    );

    drop(holders);
    daemon.shutdown();
}

#[test]
fn slow_consumers_are_shed_with_a_typed_408_once_the_outbox_cap_is_hit() {
    const CAP: usize = 4096;
    let daemon = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        max_outbox_bytes: CAP,
        ..ServerConfig::default()
    });

    // A client that floods pipelined metrics requests and never reads:
    // once kernel buffers fill, replies back up into the per-connection
    // outbox until the cap sheds the connection.
    let stream = TcpStream::connect(daemon.addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout sets");
    let mut writer = stream.try_clone().expect("stream clones");
    let burst = "{\"op\":\"metrics\"}\n".repeat(4000);
    // The server may close mid-flood (that is the point); a write error
    // after the shed is success, not failure.
    let _ = writer.write_all(burst.as_bytes());
    let _ = writer.flush();

    // Now drain: every line must be complete valid JSON (the cap can
    // shed the connection but may never tear a queued reply), and the
    // final line before EOF is the typed 408.
    let mut reader = BufReader::new(stream);
    let mut last = String::new();
    let mut lines = 0u64;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                assert!(line.ends_with('\n'), "no torn reply: {line:?}");
                let line = line.trim_end();
                validate_json(line)
                    .unwrap_or_else(|e| panic!("reply {lines} invalid JSON ({e}): {line}"));
                lines += 1;
                last = line.to_owned();
            }
            Err(e) => panic!("draining the shed connection failed: {e}"),
        }
    }
    assert!(lines >= 1, "at least the 408 line arrives");
    assert!(
        last.contains("\"code\":408") && last.contains("slow-client"),
        "the final line is the typed backpressure 408: {last}"
    );

    // The shed is visible to operators, the outbox gauge returns to
    // zero once the connection is gone, and honest clients are
    // untouched.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let shed = scrape(daemon.addr, "serve_backpressure_disconnects_total")
            .expect("backpressure counter scraped");
        if shed >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backpressure disconnect never counted: {shed}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let outbox = scrape(daemon.addr, "serve_outbox_bytes").expect("outbox gauge scraped");
    assert!(
        outbox == 0.0,
        "outbox bytes must return to zero after the shed: {outbox}"
    );
    let mut conn = daemon.connect();
    let ok = conn.request(r#"{"op":"status"}"#);
    assert!(ok.contains("\"ok\":true"), "reply: {ok}");
    drop(conn);
    daemon.shutdown();
}

#[test]
fn event_loop_counters_are_pre_seeded_on_metrics_from_boot() {
    let daemon = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(1),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(daemon.addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout sets");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("request writes");
    let mut body = String::new();
    BufReader::new(stream)
        .read_to_string(&mut body)
        .expect("metrics body reads");

    // All three event-loop series exist before any traffic has
    // exercised them, so scrapers see a continuous zero baseline.
    for series in [
        "serve_epoll_wakeups_total",
        "serve_backpressure_disconnects_total",
        "serve_outbox_bytes",
    ] {
        assert!(
            body.lines().any(|l| l.starts_with(&format!("{series} "))),
            "{series} missing from boot-time scrape:\n{body}"
        );
    }
    assert!(
        body.contains("serve_backpressure_disconnects_total 0"),
        "no backpressure before any traffic:\n{body}"
    );
    assert!(
        body.contains("serve_outbox_bytes 0"),
        "outbox gauge starts at zero:\n{body}"
    );
    daemon.shutdown();
}
