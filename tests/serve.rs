//! Live-socket integration tests for the `powerchop-serve` daemon.
//!
//! Every test boots a real daemon on a loopback port-0 socket and
//! drives it over TCP exactly like an external client would: the
//! newline-delimited JSON protocol for work, raw HTTP for `/metrics`.
//! The headline guarantees under test:
//!
//! - replies embed reports bit-identical to a direct in-process run;
//! - repeated requests are served from the LRU cache (visible in the
//!   hit counter);
//! - a full queue sheds work with a 429 reply instead of blocking;
//! - deadline-expired runs yield 408 and the daemon survives;
//! - malformed input of every stripe gets a typed error reply and
//!   never takes the daemon down;
//! - shutdown drains gracefully.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use powerchop_suite::cli::commands::report_to_json;
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::serve::{strip_trace_id, Server, ServerConfig};
use powerchop_suite::telemetry::validate_json;
use powerchop_suite::workloads::Scale;

const BUDGET: u64 = 200_000;
const SCALE: f64 = 0.05;

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        ..ServerConfig::default()
    }
}

/// A daemon running on its own thread, plus the handle to join it.
struct Daemon {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn start(cfg: ServerConfig) -> Daemon {
    let server = Server::bind(&cfg).expect("daemon binds");
    let addr = server.local_addr();
    let thread = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        thread: Some(thread),
    }
}

impl Daemon {
    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(self.addr).expect("daemon accepts connections");
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("read timeout sets");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("stream clones")),
            writer: stream,
        }
    }

    /// Sends a shutdown, verifies the drain handshake, and joins the
    /// server thread.
    fn shutdown(mut self) {
        let mut conn = self.connect();
        let reply = conn.request(r#"{"op":"shutdown"}"#);
        assert!(reply.contains("\"draining\":true"), "reply: {reply}");
        // Work submitted after the drain began is refused, not queued.
        let refused = conn.request(&format!(
            r#"{{"op":"run","bench":"hmmer","budget":{BUDGET},"scale":{SCALE}}}"#
        ));
        assert!(refused.contains("\"code\":503"), "reply: {refused}");
        drop(conn);
        let result = self
            .thread
            .take()
            .expect("thread handle present")
            .join()
            .expect("server thread joins");
        result.expect("server exits cleanly");
        // The listener is gone: new clients are refused outright.
        assert!(
            TcpStream::connect(self.addr).is_err(),
            "no connections after drain"
        );
    }
}

/// One protocol connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("request writes");
        self.writer.flush().expect("request flushes");
        self.read_reply()
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("raw bytes write");
        self.writer.flush().expect("raw bytes flush");
    }

    fn read_reply(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply reads");
        assert!(line.ends_with('\n'), "replies are newline-delimited");
        line.trim_end().to_owned()
    }
}

/// The report a direct in-process run of `bench` produces under the
/// daemon's default knobs — the bytes a serve reply must embed.
fn direct_report(bench: &str) -> String {
    let b = powerchop_suite::workloads::by_name(bench).expect("known benchmark");
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = BUDGET;
    let program = b.program(Scale(SCALE));
    let report = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes");
    report_to_json(&report)
}

fn run_line(bench: &str) -> String {
    format!(r#"{{"op":"run","bench":"{bench}","budget":{BUDGET},"scale":{SCALE}}}"#)
}

#[test]
fn replies_are_bit_identical_to_direct_runs_and_repeats_hit_the_cache() {
    let daemon = start(test_config());
    let mut conn = daemon.connect();

    let expected = direct_report("hmmer");
    let first = conn.request(&run_line("hmmer"));
    validate_json(&first).expect("reply is valid JSON");
    assert!(
        first.contains("\"trace_id\":\""),
        "every run reply carries a trace id: {first}"
    );
    assert_eq!(
        strip_trace_id(&first),
        format!(r#"{{"ok":true,"op":"run","cached":false,"report":{expected}}}"#),
        "first run is computed and embeds the exact direct-run bytes"
    );

    let second = conn.request(&run_line("hmmer"));
    assert_eq!(
        strip_trace_id(&second),
        format!(r#"{{"ok":true,"op":"run","cached":true,"report":{expected}}}"#),
        "identical request replays the cached bytes"
    );
    assert_ne!(
        first, second,
        "trace ids are per-request, never replayed from the cache"
    );

    // A different budget is a different run key: computed, not replayed.
    let other = conn.request(&format!(
        r#"{{"op":"run","bench":"hmmer","budget":{},"scale":{SCALE}}}"#,
        BUDGET / 2
    ));
    assert!(other.contains("\"cached\":false"), "reply: {other}");

    // The hit is visible to operators in the metrics text.
    let metrics = conn.request(r#"{"op":"metrics"}"#);
    validate_json(&metrics).expect("metrics reply is valid JSON");
    assert!(
        metrics.contains("serve_cache_hits_total 1"),
        "reply: {metrics}"
    );
    assert!(metrics.contains("serve_cache_misses_total 2"));

    drop(conn);
    daemon.shutdown();
}

#[test]
fn concurrent_connections_get_correct_independent_replies() {
    let daemon = start(test_config());
    let benches = ["gobmk", "namd", "msn"];
    let replies: Vec<(String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = benches
            .iter()
            .map(|bench| {
                let mut conn = daemon.connect();
                scope.spawn(move || (bench.to_string(), conn.request(&run_line(bench))))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread joins"))
            .collect()
    });
    for (bench, reply) in replies {
        let expected = direct_report(&bench);
        assert_eq!(
            strip_trace_id(&reply),
            format!(r#"{{"ok":true,"op":"run","cached":false,"report":{expected}}}"#),
            "{bench}: concurrent replies must not cross wires"
        );
    }
    daemon.shutdown();
}

#[test]
fn sweeps_run_whole_rosters_and_share_the_cache_with_run() {
    let daemon = start(test_config());
    let mut conn = daemon.connect();

    // Warm one entry via `run`, then sweep over it plus a cold bench.
    let warm = conn.request(&run_line("hmmer"));
    assert!(warm.contains("\"cached\":false"));
    let sweep = conn.request(&format!(
        r#"{{"op":"sweep","benches":["hmmer","namd"],"budget":{BUDGET},"scale":{SCALE}}}"#
    ));
    validate_json(&sweep).expect("sweep reply is valid JSON");
    assert!(sweep.contains("\"op\":\"sweep\""));
    assert!(sweep.contains("\"count\":2"), "reply: {sweep}");
    assert!(sweep.contains("\"completed\":2"), "reply: {sweep}");
    let hmmer_report = direct_report("hmmer");
    let namd_report = direct_report("namd");
    assert!(
        sweep.contains(&format!(
            r#"{{"bench":"hmmer","ok":true,"cached":true,"report":{hmmer_report}}}"#
        )),
        "warm bench is served from cache: {sweep}"
    );
    assert!(
        sweep.contains(&format!(
            r#"{{"bench":"namd","ok":true,"cached":false,"report":{namd_report}}}"#
        )),
        "cold bench is computed: {sweep}"
    );

    // The sweep populated the cache for later `run` requests.
    let namd_again = conn.request(&run_line("namd"));
    assert!(
        namd_again.contains("\"cached\":true"),
        "reply: {namd_again}"
    );

    drop(conn);
    daemon.shutdown();
}

#[test]
fn a_full_queue_sheds_requests_with_429_instead_of_blocking() {
    let daemon = start(ServerConfig {
        jobs: Some(1),
        queue_depth: 1,
        ..test_config()
    });
    // Saturate the single worker and the single queue slot with a sweep
    // of long runs on one connection...
    let mut sweeper = daemon.connect();
    writeln!(
        sweeper.writer,
        r#"{{"op":"sweep","benches":["gobmk","lbm","dedup"],"budget":3000000,"scale":0.2}}"#
    )
    .expect("sweep writes");
    sweeper.writer.flush().expect("sweep flushes");

    // ...then probe from a second connection until the backpressure is
    // visible. Each probe uses a distinct budget so none is a cache hit.
    let mut prober = daemon.connect();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_busy = false;
    let mut probe_budget = 1000;
    while Instant::now() < deadline {
        probe_budget += 1;
        let reply = prober.request(&format!(
            r#"{{"op":"run","bench":"hmmer","budget":{probe_budget},"scale":{SCALE}}}"#
        ));
        validate_json(&reply).expect("probe reply is valid JSON");
        if reply.contains("\"code\":429") {
            assert!(reply.contains("\"error\":\"busy\""), "reply: {reply}");
            saw_busy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_busy, "a saturated queue must shed with 429");

    // The shed request lost nothing else: the sweep still completes and
    // the daemon still answers.
    let sweep_reply = sweeper.read_reply();
    assert!(
        sweep_reply.contains("\"completed\":3"),
        "reply: {sweep_reply}"
    );
    let status = prober.request(r#"{"op":"status"}"#);
    assert!(status.contains("\"ok\":true"), "reply: {status}");
    let metrics = prober.request(r#"{"op":"metrics"}"#);
    assert!(metrics.contains("serve_busy_total"), "reply: {metrics}");

    drop(sweeper);
    drop(prober);
    daemon.shutdown();
}

#[test]
fn deadline_expired_runs_reply_408_and_the_daemon_survives() {
    let daemon = start(test_config());
    let mut conn = daemon.connect();

    // A budget that would take minutes, strangled by a 1 ms deadline.
    let reply = conn
        .request(r#"{"op":"run","bench":"gobmk","budget":100000000,"scale":1.0,"deadline_ms":1}"#);
    assert!(reply.contains("\"code\":408"), "reply: {reply}");
    assert!(reply.contains("\"error\":\"deadline\""), "reply: {reply}");

    // The worker was reclaimed: a normal run still completes.
    let ok = conn.request(&run_line("hmmer"));
    assert!(ok.contains("\"ok\":true"), "reply: {ok}");
    let metrics = conn.request(r#"{"op":"metrics"}"#);
    assert!(
        metrics.contains("serve_deadline_expired_total 1"),
        "reply: {metrics}"
    );

    drop(conn);
    daemon.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_and_never_kill_the_daemon() {
    let daemon = start(ServerConfig {
        max_request_bytes: 4096,
        ..test_config()
    });
    let mut conn = daemon.connect();

    // A fuzz sweep of broken inputs on one connection: every line gets
    // a well-formed typed error reply on the same connection.
    let cases: &[(&str, u16)] = &[
        ("", 400),
        ("   ", 400),
        ("{", 400),
        ("nonsense", 400),
        ("[1,2,3]", 400),
        ("\"just a string\"", 400),
        ("{}", 400),
        (r#"{"op":42}"#, 400),
        (r#"{"op":"warp-drive"}"#, 400),
        (r#"{"op":"run"}"#, 400),
        (r#"{"op":"run","bench":7}"#, 400),
        (r#"{"op":"run","bench":"doom"}"#, 404),
        (r#"{"op":"run","bench":"hmmer","budget":0}"#, 400),
        (r#"{"op":"run","bench":"hmmer","budget":1e999}"#, 400),
        (r#"{"op":"run","bench":"hmmer","scale":-2}"#, 400),
        (r#"{"op":"run","bench":"hmmer","manager":"overdrive"}"#, 400),
        (r#"{"op":"sweep","benches":[]}"#, 400),
        (r#"{"op":"sweep","suite":"quake"}"#, 400),
    ];
    for (line, code) in cases {
        let reply = conn.request(line);
        validate_json(&reply).unwrap_or_else(|e| panic!("{line:?}: reply not JSON ({e}): {reply}"));
        assert!(
            reply.contains(&format!("\"code\":{code}")),
            "{line:?}: expected {code}, got {reply}"
        );
        assert!(reply.contains("\"ok\":false"), "{line:?}: {reply}");
        assert!(reply.contains("\"message\":"), "{line:?}: {reply}");
    }

    // Invalid UTF-8 is refused but the line boundary was found, so the
    // connection stays usable.
    conn.send_raw(b"\xff\xfe\x80garbage\n");
    let reply = conn.read_reply();
    assert!(reply.contains("\"code\":400"), "reply: {reply}");
    assert!(reply.contains("UTF-8"), "reply: {reply}");

    // Nesting past the parser's depth cap is a 400, not a stack overflow.
    let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
    let reply = conn.request(&deep);
    assert!(reply.contains("\"code\":400"), "reply: {reply}");

    // After all that abuse the same connection still serves real work.
    let ok = conn.request(&run_line("hmmer"));
    assert!(ok.contains("\"ok\":true"), "reply: {ok}");
    drop(conn);

    // An oversized line (no newline inside the limit) gets a 400 and
    // the connection is dropped — there is no boundary to resync at.
    let mut big = daemon.connect();
    big.send_raw(&vec![b'a'; 5000]);
    big.send_raw(b"\n");
    let reply = big.read_reply();
    assert!(reply.contains("exceeds 4096 bytes"), "reply: {reply}");
    let mut rest = String::new();
    let n = big.reader.read_to_string(&mut rest).expect("read to EOF");
    assert_eq!(n, 0, "oversized senders are disconnected");

    // And a fresh connection is unaffected.
    let mut fresh = daemon.connect();
    let status = fresh.request(r#"{"op":"status"}"#);
    assert!(status.contains("\"ok\":true"), "reply: {status}");
    drop(fresh);
    daemon.shutdown();
}

#[test]
fn http_get_serves_prometheus_metrics_on_the_same_port() {
    let daemon = start(test_config());
    let mut conn = daemon.connect();
    let ok = conn.request(&run_line("hmmer"));
    assert!(ok.contains("\"ok\":true"));
    drop(conn);

    // A raw HTTP client (curl, a Prometheus scraper) on the same port.
    let mut http = TcpStream::connect(daemon.addr).expect("connects");
    write!(
        http,
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\nUser-Agent: test\r\n\r\n"
    )
    .expect("request writes");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("response reads");
    assert!(
        response.starts_with("HTTP/1.1 200 OK\r\n"),
        "response: {response}"
    );
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4"),
        "response: {response}"
    );
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .expect("header/body split");
    assert!(body.contains("# TYPE serve_requests_total counter"));
    assert!(body.contains("serve_runs_total 1"));
    assert!(body.contains("serve_connections_total"));
    // The per-op latency histogram is a real Prometheus histogram:
    // typed, with bucket/sum/count series carrying the op label.
    assert!(
        body.contains("# TYPE serve_request_duration_ms histogram"),
        "body: {body}"
    );
    assert!(
        body.contains("# HELP serve_request_duration_ms"),
        "body: {body}"
    );
    assert!(
        body.contains(r#"serve_request_duration_ms_bucket{op="run",le="+Inf"} 1"#),
        "body: {body}"
    );
    assert!(
        body.contains(r#"serve_request_duration_ms_count{op="run"} 1"#),
        "body: {body}"
    );
    assert!(
        body.contains(r#"serve_request_duration_ms_sum{op="run"}"#),
        "body: {body}"
    );
    // Series the daemon has never observed are pre-seeded at zero so
    // dashboards see every op from boot, and the in-flight gauge exists.
    assert!(
        body.contains(r#"serve_request_duration_ms_count{op="sweep"} 0"#),
        "body: {body}"
    );
    assert!(body.contains("serve_inflight_requests 0"), "body: {body}");
    // Every exposition line is `# ...` or `name value` (labels never
    // contain spaces), and every bucket series is monotone in `le`.
    for line in body.lines() {
        assert!(
            line.starts_with('#') || line.split_whitespace().count() == 2,
            "malformed exposition line: {line:?}"
        );
    }
    let mut last: Option<(String, u64)> = None;
    for line in body.lines() {
        let Some((key, value)) = line.split_once(' ') else {
            continue;
        };
        let Some((series, _le)) = key.split_once("le=\"") else {
            last = None;
            continue;
        };
        let count: u64 = value.parse().expect("bucket counts are integers");
        if let Some((prev_series, prev_count)) = &last {
            if *prev_series == series {
                assert!(
                    *prev_count <= count,
                    "bucket counts must be cumulative: {line:?}"
                );
            }
        }
        last = Some((series.to_owned(), count));
    }

    // Anything but /metrics is a 404, and the daemon shrugs it off.
    let mut other = TcpStream::connect(daemon.addr).expect("connects");
    write!(other, "GET /admin HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("writes");
    let mut response = String::new();
    other.read_to_string(&mut response).expect("reads");
    assert!(
        response.starts_with("HTTP/1.1 404 Not Found\r\n"),
        "response: {response}"
    );

    daemon.shutdown();
}
