//! Crash-consistency integration tests for the durable serve stack.
//!
//! Three guarantees under test, end to end:
//!
//! - **Resume identity**: a daemon booted over a journal holding an
//!   interrupted sweep (an `Intent` with a spilled mid-run checkpoint,
//!   exactly what a SIGKILL mid-sweep leaves behind) finishes the sweep
//!   from the checkpoint with zero re-done instructions, and the
//!   recovered reports are byte-identical to uninterrupted in-process
//!   runs.
//! - **Corruption containment**: byte-flip and truncation fuzzing over
//!   a journal never panics `replay`, and recovery always lands on the
//!   exact prefix of records before the damage. A daemon booted over a
//!   corrupt journal serves normally and reports the discard.
//! - **Cache persistence**: results computed before a restart are served
//!   as cache hits, bit-identical, after it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use powerchop_suite::cli::commands::report_to_json;
use powerchop_suite::durable::{
    journal_path, replay, spill_path, write_atomic, Journal, Record, SpecRecord,
};
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig, Simulation, SnapshotMeta};
use powerchop_suite::serve::{strip_trace_id, Server, ServerConfig};
use powerchop_suite::workloads::Scale;

/// Knobs for the resume-identity test: scale sets the run length (long
/// enough that the interrupted run has real work left), budget merely
/// caps it.
const SWEEP_SCALE: f64 = 0.3;
const SWEEP_BUDGET: u64 = 10_000_000;

/// Knobs for the quick corruption/cache tests.
const QUICK_SCALE: f64 = 0.05;
const QUICK_BUDGET: u64 = 200_000;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pwc-dsrv-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn durable_config(journal: &Path, cache: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        journal_dir: Some(journal.to_string_lossy().into_owned()),
        cache_dir: Some(cache.to_string_lossy().into_owned()),
        spill_every: 100_000,
        ..ServerConfig::default()
    }
}

/// A daemon running on its own thread, plus the handle to join it.
struct Daemon {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn start(cfg: &ServerConfig) -> Daemon {
    let server = Server::bind(cfg).expect("daemon binds");
    let addr = server.local_addr();
    let thread = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        thread: Some(thread),
    }
}

impl Daemon {
    fn request(&self, line: &str) -> String {
        let mut stream = TcpStream::connect(self.addr).expect("daemon accepts");
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("read timeout sets");
        writeln!(stream, "{line}").expect("request writes");
        stream.flush().expect("request flushes");
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply reads");
        assert!(reply.ends_with('\n'), "replies are newline-delimited");
        reply.trim_end().to_owned()
    }

    /// Polls `health` until boot-time recovery finishes; returns the
    /// settled health reply.
    fn await_recovery(&self) -> String {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let reply = self.request(r#"{"op":"health"}"#);
            if reply.contains("\"recovery_active\":false") {
                return reply;
            }
            assert!(
                Instant::now() < deadline,
                "recovery still active after 120s: {reply}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Scrapes the HTTP `/metrics` endpoint and returns one counter.
    fn counter(&self, name: &str) -> u64 {
        let mut stream = TcpStream::connect(self.addr).expect("daemon accepts");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("scrape writes");
        let mut body = String::new();
        BufReader::new(stream)
            .read_to_string(&mut body)
            .expect("scrape reads");
        body.lines()
            .find_map(|l| {
                l.strip_prefix(name)
                    .and_then(|rest| rest.trim().parse().ok())
            })
            .unwrap_or_else(|| panic!("counter {name} missing from scrape:\n{body}"))
    }

    fn shutdown(mut self) {
        let reply = self.request(r#"{"op":"shutdown"}"#);
        assert!(reply.contains("\"draining\":true"), "reply: {reply}");
        self.thread
            .take()
            .expect("thread handle present")
            .join()
            .expect("server thread joins")
            .expect("server exits cleanly");
    }
}

fn json_u64_field(text: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let at = text.find(&key)? + key.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn spec_record(bench: &str, budget: u64, scale: f64) -> SpecRecord {
    SpecRecord {
        bench: bench.to_owned(),
        manager_tag: 0, // PowerChop
        manager_param: 0,
        budget,
        scale_bits: scale.to_bits(),
        seed: None,
        storm: false,
    }
}

/// The report an uninterrupted in-process run produces — the bytes any
/// recovered reply must embed.
fn direct_report(bench: &str, budget: u64, scale: f64) -> String {
    let b = powerchop_suite::workloads::by_name(bench).expect("known benchmark");
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = budget;
    let program = b.program(Scale(scale));
    let report = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes");
    report_to_json(&report)
}

#[test]
fn interrupted_sweep_resumes_from_its_checkpoint_with_zero_redone_work() {
    let journal_dir = temp_dir("resume-journal");
    let cache_dir = temp_dir("resume-cache");

    // Fabricate exactly the on-disk state a SIGKILL mid-sweep leaves:
    // a journaled two-benchmark intent, with the first benchmark run
    // partway and its checkpoint durably spilled.
    let specs = vec![
        spec_record("hmmer", SWEEP_BUDGET, SWEEP_SCALE),
        spec_record("namd", SWEEP_BUDGET, SWEEP_SCALE),
    ];
    let jpath = journal_path(&journal_dir);
    let mut journal = Journal::open(&jpath).expect("journal opens");
    journal
        .append(&Record::Intent {
            id: 0,
            trace: 0,
            specs,
        })
        .expect("intent journals");
    let bench = powerchop_suite::workloads::by_name("hmmer").expect("known benchmark");
    let mut cfg = RunConfig::for_kind(bench.core_kind());
    cfg.max_instructions = SWEEP_BUDGET;
    let program = bench.program(Scale(SWEEP_SCALE));
    let mut sim = Simulation::new(&program, ManagerKind::PowerChop, &cfg).expect("sim builds");
    while sim.retired() < 800_000 && !sim.is_done() {
        sim.step_chunk(65_536).expect("sim steps");
    }
    let spilled_at = sim.retired();
    assert!(
        spilled_at >= 800_000 && !sim.is_done(),
        "the interrupted run must have real work left (retired {spilled_at})"
    );
    let meta = SnapshotMeta {
        benchmark: "hmmer".into(),
        scale: SWEEP_SCALE,
        manager: "powerchop".into(),
        budget: SWEEP_BUDGET,
        fault_seed: None,
        storm: false,
    };
    let snapshot = sim.snapshot(&meta);
    write_atomic(&spill_path(&journal_dir, 0, "hmmer"), &snapshot).expect("spill writes");
    journal
        .append(&Record::Spill {
            id: 0,
            bench: "hmmer".into(),
            retired: spilled_at,
        })
        .expect("spill journals");
    drop(journal);

    // Boot over the crash state and let recovery finish the sweep.
    let daemon = start(&durable_config(&journal_dir, &cache_dir));
    let health = daemon.await_recovery();
    assert!(health.contains("\"durable\":true"), "health: {health}");
    assert!(health.contains("\"clean_boot\":false"), "health: {health}");
    assert_eq!(json_u64_field(&health, "pending_intents"), Some(1));
    assert_eq!(json_u64_field(&health, "journal_replayed"), Some(2));
    assert_eq!(json_u64_field(&health, "runs_resumed"), Some(2));
    assert_eq!(json_u64_field(&health, "sweeps_resumed"), Some(1));
    assert_eq!(
        json_u64_field(&health, "resumed_instructions"),
        Some(spilled_at),
        "recovery must restore the run exactly at its spill point"
    );
    assert_eq!(
        json_u64_field(&health, "redone_instructions"),
        Some(0),
        "recovery must never re-execute checkpointed work"
    );

    // The recovered results must be cache hits, byte-identical to
    // uninterrupted runs.
    for bench in ["hmmer", "namd"] {
        let reply = daemon.request(&format!(
            r#"{{"op":"run","bench":"{bench}","budget":{SWEEP_BUDGET},"scale":{SWEEP_SCALE}}}"#
        ));
        let expected = format!(
            r#"{{"ok":true,"op":"run","cached":true,"report":{}}}"#,
            direct_report(bench, SWEEP_BUDGET, SWEEP_SCALE)
        );
        assert_eq!(
            strip_trace_id(&reply),
            expected,
            "recovered {bench} diverged"
        );
    }

    // The recovery counters are wired into the Prometheus scrape.
    assert_eq!(daemon.counter("serve_recoveries_total"), 1);
    assert_eq!(daemon.counter("serve_journal_replayed_total"), 2);
    assert_eq!(daemon.counter("serve_torn_tail_discards_total"), 0);

    // The retired intent is gone: its spill file was removed and a
    // fresh boot of the same journal owes nothing.
    daemon.shutdown();
    assert!(
        !spill_path(&journal_dir, 0, "hmmer").exists(),
        "settled intents must not leak spill files"
    );
    let after = replay(&jpath).expect("journal replays");
    assert!(after.pending.is_empty(), "intent must be retired");

    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Folds the first `n` of `records` the way replay does, returning the
/// pending intent ids it must report.
fn pending_ids_after(records: &[Record], n: usize) -> Vec<u64> {
    let mut pending: Vec<u64> = Vec::new();
    for record in &records[..n] {
        match record {
            Record::Intent { id, .. } => pending.push(*id),
            Record::Spill { .. } => {}
            Record::Done { id } => pending.retain(|p| p != id),
        }
    }
    pending
}

#[test]
fn journal_byte_flips_and_truncations_land_on_the_last_valid_record() {
    let dir = temp_dir("fuzz");
    let records = [
        Record::Intent {
            id: 0,
            trace: 0xFACE,
            specs: vec![spec_record("hmmer", QUICK_BUDGET, QUICK_SCALE)],
        },
        Record::Spill {
            id: 0,
            bench: "hmmer".into(),
            retired: 64_000,
        },
        Record::Intent {
            id: 1,
            trace: 0,
            specs: vec![spec_record("namd", QUICK_BUDGET, QUICK_SCALE)],
        },
        Record::Done { id: 0 },
    ];
    let jpath = journal_path(&dir);
    let mut journal = Journal::open(&jpath).expect("journal opens");
    for record in &records {
        journal.append(record).expect("record journals");
    }
    drop(journal);
    let pristine = std::fs::read(&jpath).expect("journal reads");

    // Frame boundaries: 12-byte header (magic, length, CRC) + payload.
    let mut boundaries = vec![0usize];
    for record in &records {
        boundaries.push(boundaries.last().expect("nonempty") + 12 + record.encode().len());
    }
    assert_eq!(*boundaries.last().expect("nonempty"), pristine.len());
    let frame_of = |pos: usize| boundaries[1..].iter().filter(|&&end| end <= pos).count();

    let fuzzed = jpath.with_extension("fuzz");
    // Exhaustive over the first frames, stride-sampled over the rest —
    // the same coverage/runtime trade the checkpoint fuzz tests use.
    let positions = (0..pristine.len()).filter(|&i| i < 96 || i % 7 == 0);
    for pos in positions {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0xFF;
        std::fs::write(&fuzzed, &bytes).expect("fuzzed journal writes");
        let r = replay(&fuzzed).expect("replay never fails on content");
        let intact = frame_of(pos);
        assert_eq!(
            r.records_replayed as usize, intact,
            "flip at byte {pos} must stop the scan at its frame"
        );
        assert!(r.discarded(), "flip at byte {pos} must be reported");
        let ids: Vec<u64> = r.pending.iter().map(|p| p.id).collect();
        assert_eq!(
            ids,
            pending_ids_after(&records, intact),
            "flip at byte {pos} must leave the intact prefix's intents"
        );
    }

    for cut in (0..=pristine.len()).filter(|&i| i < 64 || i % 5 == 0) {
        std::fs::write(&fuzzed, &pristine[..cut]).expect("truncated journal writes");
        let r = replay(&fuzzed).expect("replay never fails on content");
        let at_boundary = boundaries.contains(&cut);
        let complete = frame_of(cut);
        assert_eq!(
            r.records_replayed as usize, complete,
            "cut at byte {cut} must keep exactly the complete frames"
        );
        assert_eq!(
            r.discarded(),
            !at_boundary,
            "cut at byte {cut}: only a mid-frame cut is a torn tail"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_daemon_booted_over_a_corrupt_journal_serves_and_reports_the_discard() {
    let journal_dir = temp_dir("corrupt-journal");
    let cache_dir = temp_dir("corrupt-cache");
    let jpath = journal_path(&journal_dir);
    let mut journal = Journal::open(&jpath).expect("journal opens");
    journal
        .append(&Record::Intent {
            id: 0,
            trace: 0,
            specs: vec![spec_record("hmmer", QUICK_BUDGET, QUICK_SCALE)],
        })
        .expect("intent journals");
    journal
        .append(&Record::Done { id: 0 })
        .expect("done journals");
    drop(journal);
    // Flip a byte inside the Done frame: the boot must discard it and
    // re-owe the intent instead of trusting a journal it misread.
    let mut bytes = std::fs::read(&jpath).expect("journal reads");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&jpath, &bytes).expect("corrupt journal writes");

    let daemon = start(&durable_config(&journal_dir, &cache_dir));
    let health = daemon.await_recovery();
    assert!(health.contains("\"clean_boot\":false"), "health: {health}");
    assert!(
        json_u64_field(&health, "torn_tails_discarded") >= Some(1),
        "health: {health}"
    );
    // The re-owed intent was finished by recovery: the run is cached.
    let reply = daemon.request(&format!(
        r#"{{"op":"run","bench":"hmmer","budget":{QUICK_BUDGET},"scale":{QUICK_SCALE}}}"#
    ));
    let expected = format!(
        r#"{{"ok":true,"op":"run","cached":true,"report":{}}}"#,
        direct_report("hmmer", QUICK_BUDGET, QUICK_SCALE)
    );
    assert_eq!(strip_trace_id(&reply), expected);
    assert!(daemon.counter("serve_torn_tail_discards_total") >= 1);
    daemon.shutdown();

    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn the_result_cache_survives_a_restart_bit_identically() {
    let journal_dir = temp_dir("cache-journal");
    let cache_dir = temp_dir("cache-cache");
    let line =
        format!(r#"{{"op":"run","bench":"gobmk","budget":{QUICK_BUDGET},"scale":{QUICK_SCALE}}}"#);
    let report = direct_report("gobmk", QUICK_BUDGET, QUICK_SCALE);

    let first = start(&durable_config(&journal_dir, &cache_dir));
    let fresh = first.request(&line);
    assert_eq!(
        strip_trace_id(&fresh),
        format!(r#"{{"ok":true,"op":"run","cached":false,"report":{report}}}"#)
    );
    first.shutdown();

    let second = start(&durable_config(&journal_dir, &cache_dir));
    let health = second.await_recovery();
    assert!(health.contains("\"clean_boot\":false"), "health: {health}");
    assert!(
        json_u64_field(&health, "cache_reloaded") >= Some(1),
        "health: {health}"
    );
    let cached = second.request(&line);
    assert_eq!(
        strip_trace_id(&cached),
        format!(r#"{{"ok":true,"op":"run","cached":true,"report":{report}}}"#),
        "the reloaded cache must serve the exact pre-restart bytes"
    );
    assert!(second.counter("serve_cache_reloads_total") >= 1);
    second.shutdown();

    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
