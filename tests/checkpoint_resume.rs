//! Checkpoint/restore crash-safety tests (tier 1).
//!
//! The contracts under test, end to end:
//!
//! 1. **Bit-identical resume** — checkpointing a run mid-flight and
//!    resuming from the snapshot produces a `RunReport` identical (to the
//!    bit, including energy) to an uninterrupted run, for clean and
//!    fault-injected runs alike, regardless of where the checkpoint
//!    lands.
//! 2. **Self-description** — the snapshot's metadata section round-trips
//!    everything needed to rebuild the run configuration.
//! 3. **Corruption safety** — flipped or truncated snapshot bytes
//!    surface as typed errors from `Simulation::restore`; no input ever
//!    panics.

use powerchop::{read_meta, ManagerKind, RunConfig, RunReport, Simulation, SnapshotMeta};
use powerchop_faults::FaultConfig;
use powerchop_uarch::config::CoreKind;
use powerchop_workloads::Scale;

const BUDGET: u64 = 200_000;
const SCALE: Scale = Scale(0.05);
const BENCHES: [&str; 3] = ["hmmer", "namd", "gobmk"];

fn small_cfg(kind: CoreKind, faults: Option<FaultConfig>) -> RunConfig {
    let mut cfg = RunConfig::for_kind(kind);
    cfg.max_instructions = BUDGET;
    cfg.faults = faults;
    cfg
}

fn meta_for(bench: &str, faults: &Option<FaultConfig>) -> SnapshotMeta {
    SnapshotMeta {
        benchmark: bench.to_string(),
        scale: SCALE.0,
        manager: "powerchop".to_string(),
        budget: BUDGET,
        fault_seed: faults.as_ref().map(|f| f.seed),
        storm: false,
    }
}

fn assert_reports_identical(bench: &str, a: &RunReport, b: &RunReport) {
    assert_eq!(a.instructions, b.instructions, "{bench}: instructions");
    assert_eq!(a.cycles, b.cycles, "{bench}: cycles");
    assert_eq!(a.stats, b.stats, "{bench}: core stats");
    assert_eq!(a.bt, b.bt, "{bench}: BT stats");
    assert_eq!(a.switches, b.switches, "{bench}: gating switches");
    assert_eq!(a.gated, b.gated, "{bench}: gated cycles");
    assert_eq!(a.faults, b.faults, "{bench}: fault stats");
    assert_eq!(a.degrade, b.degrade, "{bench}: degradation stats");
    assert_eq!(
        a.energy.total_j.to_bits(),
        b.energy.total_j.to_bits(),
        "{bench}: total energy bits"
    );
    assert_eq!(
        a.energy.leakage_j.to_bits(),
        b.energy.leakage_j.to_bits(),
        "{bench}: leakage energy bits"
    );
}

/// Runs `bench` uninterrupted and checkpointed-then-resumed, placing the
/// checkpoint at `num/den` of the run's actual instruction count.
/// Returns both reports plus the snapshot bytes.
fn run_both_ways(
    bench: &str,
    faults: Option<FaultConfig>,
    num: u64,
    den: u64,
) -> (RunReport, RunReport, Vec<u8>) {
    let b = powerchop_workloads::by_name(bench).expect("known benchmark");
    let program = b.program(SCALE);
    let cfg = small_cfg(b.core_kind(), faults);

    let mut baseline =
        Simulation::new(&program, ManagerKind::PowerChop, &cfg).expect("baseline starts");
    baseline.run_to_completion().expect("baseline runs");
    let uninterrupted = baseline.into_report();
    let at = (uninterrupted.instructions * num / den).max(1);

    let mut first =
        Simulation::new(&program, ManagerKind::PowerChop, &cfg).expect("first half starts");
    // Deliberately odd chunk size so the checkpoint lands mid-chunk
    // relative to any internal window/region boundary.
    while !first.is_done() && first.retired() < at {
        first.step_chunk(997).expect("first half runs");
    }
    assert!(
        !first.is_done(),
        "{bench}: checkpoint point {at} must be mid-run"
    );
    let bytes = first.snapshot(&meta_for(bench, &faults));

    let mut resumed = Simulation::restore(&program, ManagerKind::PowerChop, &cfg, &bytes)
        .expect("restore succeeds");
    assert_eq!(resumed.retired(), first.retired(), "{bench}: resume point");
    resumed.run_to_completion().expect("resumed half runs");
    (uninterrupted, resumed.into_report(), bytes)
}

#[test]
fn clean_runs_resume_bit_identically() {
    for bench in BENCHES {
        let (uninterrupted, resumed, _) = run_both_ways(bench, None, 1, 2);
        assert_reports_identical(bench, &uninterrupted, &resumed);
    }
}

#[test]
fn faulted_runs_resume_bit_identically() {
    for bench in BENCHES {
        let faults = FaultConfig::storm(0xDEAD_BEEF);
        let (uninterrupted, resumed, _) = run_both_ways(bench, Some(faults), 1, 2);
        assert!(
            uninterrupted.faults.expect("fault stats").total() > 0,
            "{bench}: storm must fire so the resume crosses fault state"
        );
        assert_reports_identical(bench, &uninterrupted, &resumed);
    }
}

#[test]
fn checkpoint_position_does_not_matter() {
    // Early and late checkpoints both converge on the same report.
    let (baseline, early, _) = run_both_ways("hmmer", None, 1, 10);
    let (_, late, _) = run_both_ways("hmmer", None, 3, 4);
    assert_reports_identical("hmmer(early)", &baseline, &early);
    assert_reports_identical("hmmer(late)", &baseline, &late);
}

#[test]
fn snapshot_metadata_round_trips() {
    let faults = FaultConfig::storm(0xFEED_F00D);
    let (_, _, bytes) = run_both_ways("namd", Some(faults), 1, 2);
    let meta = read_meta(&bytes).expect("meta parses");
    assert_eq!(meta.benchmark, "namd");
    assert_eq!(meta.scale, SCALE.0);
    assert_eq!(meta.manager, "powerchop");
    assert_eq!(meta.budget, BUDGET);
    assert_eq!(meta.fault_seed, Some(faults.seed));
    assert!(!meta.storm);
}

#[test]
fn restore_rejects_mismatched_configuration() {
    let b = powerchop_workloads::by_name("hmmer").expect("known benchmark");
    let program = b.program(SCALE);
    let cfg = small_cfg(b.core_kind(), None);
    let (_, _, bytes) = run_both_ways("hmmer", None, 1, 2);

    // Different manager kind changes the config fingerprint.
    let err = Simulation::restore(&program, ManagerKind::FullPower, &cfg, &bytes)
        .expect_err("manager mismatch must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("config"),
        "mismatch error names the configuration: {msg}"
    );

    // Different budget likewise.
    let mut other = cfg.clone();
    other.max_instructions = BUDGET * 2;
    Simulation::restore(&program, ManagerKind::PowerChop, &other, &bytes)
        .expect_err("budget mismatch must be rejected");

    // A different program is caught even under the same configuration.
    let other_prog = powerchop_workloads::by_name("gobmk")
        .expect("known benchmark")
        .program(SCALE);
    Simulation::restore(&other_prog, ManagerKind::PowerChop, &cfg, &bytes)
        .expect_err("program mismatch must be rejected");
}

#[test]
fn byte_flips_and_truncations_error_and_never_panic() {
    let b = powerchop_workloads::by_name("hmmer").expect("known benchmark");
    let program = b.program(SCALE);
    let faults = Some(FaultConfig::storm(0xBAD_C0DE));
    let cfg = small_cfg(b.core_kind(), faults);
    let (_, _, bytes) = run_both_ways("hmmer", faults, 1, 2);

    // Every single-byte flip must surface as a typed error: the
    // whole-file CRC trailer catches header and section-table damage,
    // the per-section CRCs catch payload damage. Exhaustively flip the
    // first 512 bytes (header plus early section activity), then sample
    // the remainder so the test stays O(seconds) on large memory images.
    let stride = (bytes.len() / 256).max(1);
    let positions: Vec<usize> = (0..bytes.len().min(512))
        .chain((512..bytes.len()).step_by(stride))
        .chain(bytes.len().saturating_sub(64)..bytes.len())
        .collect();
    for pos in positions {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        let result = Simulation::restore(&program, ManagerKind::PowerChop, &cfg, &corrupt);
        assert!(
            result.is_err(),
            "flip at byte {pos}/{} must be detected",
            bytes.len()
        );
    }

    // Every truncation point (sampled) is likewise a typed error.
    for cut in (0..bytes.len()).step_by(stride.max(4099)) {
        let result = Simulation::restore(&program, ManagerKind::PowerChop, &cfg, &bytes[..cut]);
        assert!(result.is_err(), "truncation at {cut} must be detected");
    }
    Simulation::restore(&program, ManagerKind::PowerChop, &cfg, &[])
        .expect_err("empty snapshot must be rejected");
}
