//! Assembler/disassembler round-trip over every synthetic benchmark: the
//! text form of each of the 29 workload programs must re-assemble to the
//! identical instruction sequence.

use powerchop_suite::gisa::asm::{assemble, disassemble};
use powerchop_suite::workloads::{all, Scale};

#[test]
fn every_benchmark_round_trips_through_text() {
    for b in all() {
        let program = b.program(Scale(0.01));
        let text = disassemble(&program);
        let reassembled = assemble(b.name(), &text)
            .unwrap_or_else(|e| panic!("{} failed to re-assemble: {e}", b.name()));
        assert_eq!(
            program.insts(),
            reassembled.insts(),
            "{} changed across disassemble/assemble",
            b.name()
        );
    }
}

#[test]
fn disassembly_is_human_readable() {
    let program = powerchop_suite::workloads::by_name("hmmer")
        .unwrap()
        .program(Scale(0.01));
    let text = disassemble(&program);
    // Spot checks: labels exist, mnemonics exist, no raw `@pc` targets.
    assert!(text.contains("L2:"), "loop head should carry a label");
    assert!(text.contains("blt"));
    assert!(!text.contains('@'), "all targets must be symbolic");
}
