//! Tier-1 guarantees for the work-stealing sweep engine: the pool must
//! change wall-clock time only — never a byte of output — and isolate
//! panics to the job that raised them.

use powerchop_suite::cli::commands::report_to_json;
use powerchop_suite::exec::{resolve_jobs_from, run_jobs, JobPanic};
use powerchop_suite::faults::FaultConfig;
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig, RunReport};
use powerchop_suite::workloads::{Benchmark, Scale};

const SCALE: Scale = Scale(0.05);
const BUDGET: u64 = 200_000;

/// A cross-section of the suites: integer, FP/vector, PARSEC and mobile.
fn cross_section() -> Vec<&'static Benchmark> {
    ["gobmk", "namd", "lbm", "dedup", "msn", "google"]
        .iter()
        .map(|n| powerchop_suite::workloads::by_name(n).expect("known benchmark"))
        .collect()
}

fn run_bench(b: &Benchmark, faults: Option<FaultConfig>) -> RunReport {
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = BUDGET;
    cfg.faults = faults;
    let program = b.program(SCALE);
    run_program(&program, ManagerKind::PowerChop, &cfg).expect("run completes")
}

/// The sweep artifact `run --all --json` is built from: one JSON report
/// per benchmark, folded in submission order.
fn json_artifact(jobs: usize, faults: impl Fn() -> Option<FaultConfig> + Sync) -> String {
    let benches = cross_section();
    let rows = run_jobs(&benches, jobs, |_, b| {
        report_to_json(&run_bench(b, faults()))
    });
    rows.into_iter()
        .map(|r| r.expect("no panics"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The CSV shape the bench-crate sweeps write, exercised through the pool.
fn csv_artifact(jobs: usize) -> String {
    let benches = cross_section();
    let rows = run_jobs(&benches, jobs, |_, b| {
        let r = run_bench(b, None);
        format!(
            "{},{},{},{:.6},{:.6}",
            r.name,
            r.instructions,
            r.cycles,
            r.ipc(),
            r.energy.avg_power_w
        )
    });
    let mut csv = String::from("bench,instructions,cycles,ipc,avg_power_w\n");
    for row in rows {
        csv.push_str(&row.expect("no panics"));
        csv.push('\n');
    }
    csv
}

#[test]
fn clean_sweep_reports_are_bit_identical_across_thread_counts() {
    let sequential = json_artifact(1, || None);
    for jobs in [2, 8] {
        assert_eq!(
            json_artifact(jobs, || None),
            sequential,
            "JSON artifact diverged at jobs={jobs}"
        );
    }
}

#[test]
fn storm_sweep_reports_are_bit_identical_across_thread_counts() {
    let storm = || Some(FaultConfig::storm(0xCAFE_BABE));
    let sequential = json_artifact(1, storm);
    for jobs in [2, 8] {
        assert_eq!(
            json_artifact(jobs, storm),
            sequential,
            "storm JSON artifact diverged at jobs={jobs}"
        );
    }
}

#[test]
fn csv_bytes_are_bit_identical_across_thread_counts() {
    let sequential = csv_artifact(1);
    assert!(sequential.lines().count() == cross_section().len() + 1);
    for jobs in [2, 8] {
        assert_eq!(
            csv_artifact(jobs),
            sequential,
            "CSV bytes diverged at jobs={jobs}"
        );
    }
}

#[test]
fn a_panicking_job_is_isolated_and_indexed() {
    let items: Vec<u32> = (0..16).collect();
    let results = run_jobs(&items, 4, |_, n| {
        assert!(*n != 11, "job 11 blows up");
        n * 2
    });
    assert_eq!(results.len(), 16);
    for (i, r) in results.into_iter().enumerate() {
        if i == 11 {
            let JobPanic { index, message } = r.expect_err("job 11 panicked");
            assert_eq!(index, 11);
            assert!(message.contains("job 11 blows up"), "message: {message}");
        } else {
            assert_eq!(r.expect("other jobs survive"), i as u32 * 2);
        }
    }
}

/// Regression: a zero worker count — explicit `--jobs 0` or
/// `POWERCHOP_JOBS=0` — used to fall through unchecked (the env path
/// silently used the CPU count; the flag was a hard parse error). Both
/// must clamp to one worker, and garbage in the env var must fall back
/// to autodetection rather than abort a sweep.
#[test]
fn zero_and_garbage_worker_counts_clamp_instead_of_misbehaving() {
    assert_eq!(resolve_jobs_from(Some(0), None), 1, "--jobs 0 clamps to 1");
    assert_eq!(
        resolve_jobs_from(Some(0), Some("8")),
        1,
        "explicit zero clamps even when the env var is set"
    );
    assert_eq!(
        resolve_jobs_from(None, Some("0")),
        1,
        "POWERCHOP_JOBS=0 clamps to 1"
    );
    assert_eq!(resolve_jobs_from(None, Some("  0  ")), 1);
    for garbage in ["abc", "-4", "1.5", ""] {
        assert!(
            resolve_jobs_from(None, Some(garbage)) >= 1,
            "POWERCHOP_JOBS={garbage:?} falls back to autodetection"
        );
    }
    assert_eq!(resolve_jobs_from(Some(3), Some("0")), 3);
    assert_eq!(resolve_jobs_from(None, Some("5")), 5);
}

#[test]
fn empty_job_lists_and_oversized_pools_are_fine() {
    let empty: Vec<u32> = Vec::new();
    assert!(run_jobs(&empty, 8, |_, n| *n).is_empty());
    // More workers than jobs: every job still runs exactly once, in order.
    let results = run_jobs(&[10u32, 20], 64, |i, n| (i, *n));
    let values: Vec<(usize, u32)> = results.into_iter().map(|r| r.expect("ok")).collect();
    assert_eq!(values, vec![(0, 10), (1, 20)]);
}
