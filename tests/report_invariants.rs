//! Invariants every run report must satisfy, across benchmarks and
//! managers — the cross-crate accounting must be self-consistent.

use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::workloads::{self, Scale};

fn check(report: &powerchop_suite::powerchop::RunReport, tag: &str) {
    let r = report;
    // Cycle accounting.
    assert_eq!(
        r.gated.total, r.cycles,
        "{tag}: gated-time must cover the run"
    );
    assert!(r.gated.vpu_off <= r.gated.total, "{tag}");
    assert!(r.gated.bpu_off <= r.gated.total, "{tag}");
    assert!(r.gated.mlc_half + r.gated.mlc_one <= r.gated.total, "{tag}");
    // Event accounting.
    assert!(r.stats.mlc_hits <= r.stats.mlc_accesses, "{tag}");
    assert!(r.stats.llc_hits <= r.stats.llc_accesses, "{tag}");
    assert!(r.stats.mispredicts <= r.stats.branches, "{tag}");
    assert_eq!(
        r.stats.simd_committed + r.stats.vec_emulated,
        r.stats.vec_ops,
        "{tag}: every vector op is native or emulated"
    );
    assert_eq!(
        r.bt.interpreted_instructions + r.bt.translated_instructions,
        r.stats.instructions,
        "{tag}: BT and core must agree on instruction counts"
    );
    // Energy accounting.
    assert!(r.energy.leakage_j > 0.0, "{tag}");
    assert!(r.energy.dynamic_j > 0.0, "{tag}");
    assert!(
        (r.energy.total_j - (r.energy.leakage_j + r.energy.dynamic_j + r.energy.overhead_j)).abs()
            < 1e-12,
        "{tag}: energy components must sum"
    );
    assert_eq!(
        r.energy.cycles, r.cycles,
        "{tag}: ledger covers the whole run"
    );
    // PowerChop-specific accounting.
    if let Some(pvt) = r.pvt {
        assert_eq!(pvt.lookups, pvt.hits + pvt.misses(), "{tag}");
        assert_eq!(
            r.nucleus.interrupts,
            pvt.misses(),
            "{tag}: misses raise interrupts"
        );
        let cde = r.cde.expect("powerchop run has CDE stats");
        assert!(cde.decided + cde.reregistered <= pvt.lookups, "{tag}");
    }
}

#[test]
fn invariants_hold_across_benchmarks_and_managers() {
    for name in ["gems", "perlbench", "amazon", "streamcluster", "sjeng"] {
        let b = workloads::by_name(name).unwrap();
        let mut cfg = RunConfig::for_kind(b.core_kind());
        cfg.max_instructions = 900_000;
        let program = b.program(Scale(0.1));
        for kind in [
            ManagerKind::FullPower,
            ManagerKind::PowerChop,
            ManagerKind::MinimalPower,
            ManagerKind::TimeoutVpu {
                timeout_cycles: 10_000,
            },
        ] {
            let r = run_program(&program, kind, &cfg).unwrap();
            check(&r, &format!("{name}/{kind:?}"));
        }
    }
}

#[test]
fn full_power_never_gates_or_interrupts() {
    let b = workloads::by_name("gcc").unwrap();
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = 600_000;
    let program = b.program(Scale(0.1));
    let r = run_program(&program, ManagerKind::FullPower, &cfg).unwrap();
    assert_eq!(r.switches.total(), 0);
    assert_eq!(r.gated.vpu_off, 0);
    assert_eq!(r.gated.bpu_off, 0);
    assert_eq!(r.gated.mlc_half + r.gated.mlc_one, 0);
    assert_eq!(r.nucleus.interrupts, 0);
    assert!(r.pvt.is_none() && r.cde.is_none());
}

#[test]
fn minimal_power_gates_everything_immediately() {
    let b = workloads::by_name("gcc").unwrap();
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = 600_000;
    let program = b.program(Scale(0.1));
    let r = run_program(&program, ManagerKind::MinimalPower, &cfg).unwrap();
    assert_eq!(r.switches.total(), 3, "exactly one switch per unit at init");
    assert_eq!(r.gated.vpu_off, r.cycles);
    assert_eq!(r.gated.bpu_off, r.cycles);
    assert_eq!(r.gated.mlc_one, r.cycles);
}

#[test]
fn window_records_match_pvt_lookups() {
    let b = workloads::by_name("hmmer").unwrap();
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = 900_000;
    cfg.record_windows = true;
    let program = b.program(Scale(0.1));
    let r = run_program(&program, ManagerKind::PowerChop, &cfg).unwrap();
    assert_eq!(r.windows.len() as u64, r.pvt.unwrap().lookups);
    for w in &r.windows {
        let execs: u64 = w.counts.iter().map(|(_, n)| *n).sum();
        assert_eq!(execs, 1000, "each window holds exactly 1000 translations");
        assert!(!w.signature.is_empty());
    }
}
