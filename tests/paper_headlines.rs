//! Headline regression tests: the paper's central quantitative claims,
//! checked at reduced scale so `cargo test` guards the reproduction's
//! shape. The full-scale versions live in the bench harness
//! (`cargo bench`); see `EXPERIMENTS.md`.

use powerchop_suite::powerchop::managers::ManagedSet;
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig, RunReport};
use powerchop_suite::workloads::{self, Scale, Suite};

const SCALE: Scale = Scale(0.25);
const BUDGET: u64 = 2_500_000;

fn run(b: &workloads::Benchmark, kind: ManagerKind) -> RunReport {
    run_with(b, kind, |_| {})
}

fn run_with(
    b: &workloads::Benchmark,
    kind: ManagerKind,
    tweak: impl FnOnce(&mut RunConfig),
) -> RunReport {
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = BUDGET;
    tweak(&mut cfg);
    let program = b.program(SCALE);
    run_program(&program, kind, &cfg).expect("benchmark runs")
}

/// Abstract claim: "POWERCHOP significantly decreases power consumption
/// ... while introducing just 2% slowdown" — checked across a
/// representative cross-suite subset.
#[test]
fn headline_power_down_performance_held() {
    let subset = ["gobmk", "hmmer", "namd", "gems", "lbm", "msn", "amazon"];
    let (mut slowdowns, mut reductions) = (Vec::new(), Vec::new());
    for name in subset {
        let b = workloads::by_name(name).unwrap();
        let full = run(b, ManagerKind::FullPower);
        let chop = run(b, ManagerKind::PowerChop);
        slowdowns.push(chop.slowdown_vs(&full));
        reductions.push(chop.leakage_reduction_vs(&full));
    }
    let avg_slow = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
    let avg_leak = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        avg_slow < 0.06,
        "average slowdown {avg_slow:.3} out of band (paper: 0.022)"
    );
    assert!(
        avg_leak > 0.15,
        "average leakage reduction {avg_leak:.3} too small"
    );
}

/// §V-E / Fig. 16 headline: namd's sparse uniform vector use defeats the
/// timeout but not PowerChop.
#[test]
fn headline_namd_timeout_gap() {
    let b = workloads::by_name("namd").unwrap();
    let chop = run_with(b, ManagerKind::PowerChop, |c| {
        c.chop.managed = ManagedSet::VPU_ONLY;
    });
    let timeout = run(
        b,
        ManagerKind::TimeoutVpu {
            timeout_cycles: 20_000,
        },
    );
    assert!(
        chop.gated.vpu_off_frac() > 0.9,
        "PowerChop must gate namd's VPU nearly always: {:.2}",
        chop.gated.vpu_off_frac()
    );
    assert!(
        timeout.gated.vpu_off_frac() < 0.5,
        "the timeout must mostly fail on namd: {:.2}",
        timeout.gated.vpu_off_frac()
    );
}

/// Fig. 9/10 headline: the mobile VPU is gated >90% on every MobileBench
/// app; dedup and namd gate >90% on the server.
#[test]
fn headline_vpu_gating_fractions() {
    for b in workloads::suite(Suite::MobileBench) {
        let r = run_with(b, ManagerKind::PowerChop, |c| {
            c.chop.managed = ManagedSet::VPU_ONLY;
        });
        assert!(
            r.gated.vpu_off_frac() > 0.75,
            "{}: mobile VPU off only {:.2}",
            b.name(),
            r.gated.vpu_off_frac()
        );
    }
    for name in ["dedup", "namd"] {
        let b = workloads::by_name(name).unwrap();
        let r = run_with(b, ManagerKind::PowerChop, |c| {
            c.chop.managed = ManagedSet::VPU_ONLY;
        });
        assert!(
            r.gated.vpu_off_frac() > 0.85,
            "{name}: {:.2}",
            r.gated.vpu_off_frac()
        );
    }
}

/// Fig. 12 headline: a minimally-powered core is drastically slower than
/// PowerChop; PowerChop is close to full power.
#[test]
fn headline_minimal_power_is_drastic() {
    let b = workloads::by_name("soplex").unwrap();
    let full = run(b, ManagerKind::FullPower);
    let chop = run(b, ManagerKind::PowerChop);
    let min = run(b, ManagerKind::MinimalPower);
    assert!(min.slowdown_vs(&full) > 3.0 * chop.slowdown_vs(&full).max(0.01));
}

/// §IV-C3 headline: PVT misses are vanishingly rare once phases are
/// learned.
#[test]
fn headline_pvt_misses_are_rare() {
    let b = workloads::by_name("hmmer").unwrap();
    let r = run(b, ManagerKind::PowerChop);
    let pvt = r.pvt.unwrap();
    let rate = pvt.misses() as f64 / r.bt.translation_executions.max(1) as f64;
    assert!(
        rate < 0.001,
        "PVT miss rate {rate} out of band (paper: 0.00017)"
    );
}
