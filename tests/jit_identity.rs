//! JIT differential suite (tier 1): `--jit on` and `--jit off` must be
//! indistinguishable in every artifact.
//!
//! The native trace JIT is an execution strategy, not simulated state, so
//! for every workload in the suite — clean and under a fault storm — the
//! serve-layer JSON report (the bytes clients, caches and journals see)
//! must be byte-identical between modes. Checkpoints must also cross the
//! mode boundary in both directions: snapshot under one mode, restore
//! under the other, and still converge on the uninterrupted run's report.

use powerchop::{JitMode, ManagerKind, RunConfig, Simulation, SnapshotMeta};
use powerchop_faults::FaultConfig;
use powerchop_serve::report_to_json;
use powerchop_workloads::Scale;

const BUDGET: u64 = 100_000;
const SCALE: Scale = Scale(0.05);

fn cfg_for(bench: &powerchop_workloads::Benchmark, jit: JitMode, storm: bool) -> RunConfig {
    let mut cfg = RunConfig::for_kind(bench.core_kind());
    cfg.max_instructions = BUDGET;
    cfg.jit = jit;
    if storm {
        cfg.faults = Some(FaultConfig::storm(0xC0FF_EE00));
    }
    cfg
}

fn run_json(bench: &powerchop_workloads::Benchmark, jit: JitMode, storm: bool) -> String {
    let program = bench.program(SCALE);
    let cfg = cfg_for(bench, jit, storm);
    let mut sim = Simulation::new(&program, ManagerKind::PowerChop, &cfg).expect("sim starts");
    sim.run_to_completion().expect("run completes");
    report_to_json(&sim.into_report())
}

fn sweep(storm: bool) {
    let label = if storm { "storm" } else { "clean" };
    for bench in powerchop_workloads::all() {
        let off = run_json(bench, JitMode::Off, storm);
        let on = run_json(bench, JitMode::On, storm);
        assert_eq!(
            off,
            on,
            "{} ({label}): JIT-on report must be byte-identical to JIT-off",
            bench.name()
        );
    }
}

#[test]
fn every_workload_is_byte_identical_clean() {
    sweep(false);
}

#[test]
fn every_workload_is_byte_identical_under_fault_storm() {
    sweep(true);
}

/// Snapshot under `first`, restore under `second`, finish, and compare
/// against an uninterrupted JIT-off run of the same workload.
fn cross_modes(bench_name: &str, first: JitMode, second: JitMode) {
    let bench = powerchop_workloads::by_name(bench_name).expect("known benchmark");
    let program = bench.program(SCALE);

    let baseline_cfg = cfg_for(bench, JitMode::Off, false);
    let mut baseline =
        Simulation::new(&program, ManagerKind::PowerChop, &baseline_cfg).expect("baseline starts");
    baseline.run_to_completion().expect("baseline runs");
    let baseline_json = report_to_json(&baseline.into_report());

    let first_cfg = cfg_for(bench, first, false);
    let mut half =
        Simulation::new(&program, ManagerKind::PowerChop, &first_cfg).expect("first half starts");
    while !half.is_done() && half.retired() < BUDGET / 2 {
        half.step_chunk(997).expect("first half runs");
    }
    assert!(!half.is_done(), "{bench_name}: snapshot must land mid-run");
    let meta = SnapshotMeta {
        benchmark: bench_name.to_string(),
        scale: SCALE.0,
        manager: "powerchop".to_string(),
        budget: BUDGET,
        fault_seed: None,
        storm: false,
    };
    let bytes = half.snapshot(&meta);

    // The JIT mode is not part of the config fingerprint, so a snapshot
    // taken under one mode restores cleanly under the other.
    let second_cfg = cfg_for(bench, second, false);
    let mut resumed = Simulation::restore(&program, ManagerKind::PowerChop, &second_cfg, &bytes)
        .expect("restore crosses the JIT mode boundary");
    resumed.run_to_completion().expect("resumed half runs");
    assert_eq!(
        baseline_json,
        report_to_json(&resumed.into_report()),
        "{bench_name}: {first}->{second} resume must match the uninterrupted report"
    );
}

#[test]
fn checkpoints_cross_jit_modes_in_both_directions() {
    for bench in ["hmmer", "lbm"] {
        cross_modes(bench, JitMode::On, JitMode::Off);
        cross_modes(bench, JitMode::Off, JitMode::On);
    }
}
