//! Chaos-soak and resilience integration tests for `powerchop-serve`.
//!
//! The headline test boots a real daemon and drives a seeded storm of
//! hostile clients (chaos-wrapped sockets injecting delays, split
//! writes, byte corruption, mid-frame drops and resets) mixed with
//! honest clients, across several seeds, asserting the storm
//! invariants every time:
//!
//! - every reply line any client received is valid RFC 8259 JSON;
//! - every honest request was answered with report bytes bit-identical
//!   to a local in-process run;
//! - an injected worker kill yields a typed error for that request
//!   only, a supervisor respawn (visible in
//!   `serve_worker_respawns_total`), and continued service;
//! - the daemon drains cleanly through an in-protocol shutdown;
//! - no threads leak across the storm.
//!
//! The satellite tests pin the individual hardening behaviours: the
//! slow-client read timeout, the max-connections gate, and the
//! 408-expired run releasing its worker slot.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use powerchop_suite::cli::args::SoakOpts;
use powerchop_suite::cli::soak::run_soak;
use powerchop_suite::serve::{Server, ServerConfig};
use powerchop_suite::telemetry::validate_json;

const BUDGET: u64 = 200_000;
const SCALE: f64 = 0.05;

/// Live threads in this process (Linux: one entry per task). Returns
/// `None` where /proc is unavailable, which skips the leak check.
fn thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

/// Asserts the process thread count returns to (near) its pre-storm
/// level. Detached OS threads unwind asynchronously after `join`
/// returns, so the check retries with a deadline and allows a slack of
/// two still-exiting threads.
fn assert_no_thread_leak(before: usize, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut after;
    loop {
        match thread_count() {
            None => return,
            Some(n) => after = n,
        }
        if after <= before + 2 || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        after <= before + 2,
        "{context}: thread leak ({before} before, {after} after)"
    );
}

#[test]
fn seeded_storms_hold_every_invariant_across_seeds() {
    for seed in [1u64, 0xCAFE_BABE, 0xDEAD_BEEF] {
        let before = thread_count().unwrap_or(0);
        let opts = SoakOpts {
            seed,
            hostile: 3,
            honest: 2,
            requests: 5,
            kill_workers: 1,
            budget: BUDGET,
            scale: SCALE,
            jobs: Some(2),
            crash_cycles: 0,
        };
        let report = run_soak(&opts).expect("soak storm runs");
        assert!(
            report.passed(),
            "seed {seed}: storm violated an invariant: {report:?}"
        );
        // Every line any client received went through the RFC 8259
        // validator (`Counters::saw_reply`); zero may escape it and
        // zero may fail it.
        assert!(report.replies > 0, "seed {seed}: storm produced replies");
        assert_eq!(report.malformed, 0, "seed {seed}: malformed replies");
        assert_eq!(
            report.honest_mismatches, 0,
            "seed {seed}: honest replies must be bit-identical: {:?}",
            report.notes
        );
        // Every honest request plus the post-storm verification sweep
        // succeeded (2 clients x 5 requests + 3 roster benches).
        assert_eq!(report.honest_ok, 2 * 5 + 3, "seed {seed}");
        assert_eq!(report.kills_confirmed, 1, "seed {seed}: worker kill");
        assert!(
            report.worker_respawns >= 1,
            "seed {seed}: the supervisor must respawn the killed worker"
        );
        assert!(!report.pool_gave_up, "seed {seed}");
        assert!(report.clean_drain, "seed {seed}: in-protocol drain");
        assert_no_thread_leak(before, &format!("seed {seed}"));
    }
}

/// A daemon on its own thread, plus protocol plumbing for the satellite
/// tests (mirrors `tests/serve.rs`).
struct Daemon {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn start(cfg: ServerConfig) -> Daemon {
    let server = Server::bind(&cfg).expect("daemon binds");
    let addr = server.local_addr();
    let thread = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        thread: Some(thread),
    }
}

impl Daemon {
    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(self.addr).expect("daemon accepts connections");
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("read timeout sets");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("stream clones")),
            writer: stream,
        }
    }

    fn shutdown(mut self) {
        // The shutdown connection itself can be shed by a tight
        // max-connections gate while a previous connection's slot is
        // still being released; retry until the drain is acknowledged.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let mut conn = self.connect();
            let reply = conn.request(r#"{"op":"shutdown"}"#);
            drop(conn);
            if reply.contains("\"draining\":true") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "shutdown never acknowledged: {reply}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        self.thread
            .take()
            .expect("thread handle present")
            .join()
            .expect("server thread joins")
            .expect("server exits cleanly");
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("request writes");
        self.writer.flush().expect("request flushes");
        self.read_reply()
    }

    fn read_reply(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply reads");
        assert!(line.ends_with('\n'), "replies are newline-delimited");
        line.trim_end().to_owned()
    }

    /// Like [`Conn::request`] but returns `None` when the server closed
    /// the socket first (a connection shed mid-handshake makes the
    /// write or the read fail instead of the reply being a 503 line).
    fn try_request(&mut self, line: &str) -> Option<String> {
        writeln!(self.writer, "{line}").ok()?;
        self.writer.flush().ok()?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply).ok()?;
        Some(reply.trim_end().to_owned())
    }
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: Some(2),
        ..ServerConfig::default()
    }
}

fn run_line(bench: &str) -> String {
    format!(r#"{{"op":"run","bench":"{bench}","budget":{BUDGET},"scale":{SCALE}}}"#)
}

#[test]
fn a_killed_worker_is_respawned_and_only_its_request_fails() {
    let daemon = start(ServerConfig {
        jobs: Some(1),
        chaos_ops: true,
        ..test_config()
    });
    let mut conn = daemon.connect();

    // The kill request gets the typed error; nobody else pays for it.
    let kill = conn.request(&format!(
        r#"{{"op":"run","bench":"hmmer","budget":{BUDGET},"scale":{SCALE},"chaos":"panic"}}"#
    ));
    validate_json(&kill).expect("kill reply is valid JSON");
    assert!(kill.contains("\"code\":500"), "reply: {kill}");
    assert!(kill.contains("killed"), "reply: {kill}");

    // Even on a 1-worker pool the respawned worker picks the next run
    // up: service continued.
    let ok = conn.request(&run_line("hmmer"));
    assert!(ok.contains("\"ok\":true"), "reply: {ok}");

    // The respawn is visible to operators in both the health op and
    // the Prometheus counter.
    let health = conn.request(r#"{"op":"health"}"#);
    validate_json(&health).expect("health reply is valid JSON");
    assert!(health.contains("\"healthy\":true"), "reply: {health}");
    assert!(health.contains("\"worker_respawns\":1"), "reply: {health}");
    assert!(health.contains("\"pool_gave_up\":false"), "reply: {health}");
    let metrics = conn.request(r#"{"op":"metrics"}"#);
    assert!(
        metrics.contains("serve_worker_respawns_total 1"),
        "reply: {metrics}"
    );

    drop(conn);
    daemon.shutdown();
}

#[test]
fn chaos_ops_are_refused_unless_the_daemon_opted_in() {
    let daemon = start(test_config()); // chaos_ops defaults off
    let mut conn = daemon.connect();
    let reply = conn.request(&format!(
        r#"{{"op":"run","bench":"hmmer","budget":{BUDGET},"scale":{SCALE},"chaos":"panic"}}"#
    ));
    assert!(reply.contains("\"code\":400"), "reply: {reply}");
    assert!(reply.contains("disabled"), "reply: {reply}");
    drop(conn);
    daemon.shutdown();
}

#[test]
fn slow_loris_clients_get_a_typed_408_and_are_disconnected() {
    let daemon = start(ServerConfig {
        read_timeout_ms: 300,
        ..test_config()
    });

    // Half a request, then silence: the daemon must not wait forever.
    let mut stream = TcpStream::connect(daemon.addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout sets");
    stream
        .write_all(br#"{"op":"run","bench":"#)
        .expect("partial line writes");
    stream.flush().expect("partial line flushes");

    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("408 reply arrives");
    validate_json(reply.trim_end()).expect("408 reply is valid JSON");
    assert!(reply.contains("\"code\":408"), "reply: {reply}");
    assert!(reply.contains("slow-client"), "reply: {reply}");
    // ...and the connection is closed behind it.
    let mut rest = String::new();
    let n = reader.read_to_string(&mut rest).expect("read to EOF");
    assert_eq!(n, 0, "slow clients are disconnected after the 408");

    // The shed is visible to operators, and honest clients with the
    // same daemon are untouched.
    let mut conn = daemon.connect();
    let metrics = conn.request(r#"{"op":"metrics"}"#);
    assert!(
        metrics.contains("serve_slow_client_disconnects_total 1"),
        "reply: {metrics}"
    );
    let ok = conn.request(r#"{"op":"status"}"#);
    assert!(ok.contains("\"ok\":true"), "reply: {ok}");
    drop(conn);
    daemon.shutdown();
}

#[test]
fn excess_connections_are_shed_with_a_typed_503() {
    let daemon = start(ServerConfig {
        max_connections: 1,
        ..test_config()
    });

    // Occupy the only slot (a completed request proves it is admitted).
    let mut holder = daemon.connect();
    let ok = holder.request(r#"{"op":"status"}"#);
    assert!(ok.contains("\"ok\":true"), "reply: {ok}");

    // The next connection gets one typed 503 line and an immediate
    // close — never a thread, never a hang.
    let over = TcpStream::connect(daemon.addr).expect("connects");
    over.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout sets");
    let mut reader = BufReader::new(over);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("503 reply arrives");
    validate_json(reply.trim_end()).expect("503 reply is valid JSON");
    assert!(reply.contains("\"code\":503"), "reply: {reply}");
    assert!(reply.contains("overloaded"), "reply: {reply}");
    let mut rest = String::new();
    let n = reader.read_to_string(&mut rest).expect("read to EOF");
    assert_eq!(n, 0, "shed connections are closed");

    // Releasing the slot re-opens the gate (the decrement may lag the
    // close by a scheduler beat, so retry briefly).
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(30);
    let admitted = loop {
        let mut conn = daemon.connect();
        // A reconnect that lands before the slot decrement is shed: the
        // server may close the socket before our write (failed
        // try_request) or after a 503 line (reply without "ok":true).
        // Both mean "gate still closed" — retry.
        let reply = conn.try_request(r#"{"op":"metrics"}"#).unwrap_or_default();
        if reply.contains("\"ok\":true") {
            // Skip the `# TYPE ... counter` line; the sample line is the
            // piece that starts with a digit.
            let shed: u64 = reply
                .split("serve_conn_rejected_total ")
                .skip(1)
                .find_map(|rest| {
                    rest.chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse()
                        .ok()
                })
                .expect("rejected counter is scrapeable");
            assert!(shed >= 1, "reply: {reply}");
            drop(conn);
            break true;
        }
        drop(conn);
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(admitted, "the gate must reopen once the slot frees");
    daemon.shutdown();
}

#[test]
fn pipelined_replies_never_tear_or_interleave() {
    // One connection, a burst of pipelined requests written before any
    // reply is read: the event loop's partial-write path must deliver
    // one complete, valid JSON line per request, in request order.
    // Alternating large (metrics) and small (status) replies makes a
    // short write mid-line likely; a torn or interleaved reply would
    // fail the validator or arrive out of order.
    let daemon = start(test_config());
    let stream = TcpStream::connect(daemon.addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout sets");
    let mut writer = stream.try_clone().expect("stream clones");

    const BURST: usize = 64;
    let mut burst = String::new();
    for i in 0..BURST {
        burst.push_str(if i % 2 == 0 {
            "{\"op\":\"metrics\"}\n"
        } else {
            "{\"op\":\"status\"}\n"
        });
    }
    writer.write_all(burst.as_bytes()).expect("burst writes");
    writer.flush().expect("burst flushes");

    let mut reader = BufReader::new(stream);
    for i in 0..BURST {
        let mut line = String::new();
        reader.read_line(&mut line).expect("pipelined reply reads");
        assert!(line.ends_with('\n'), "reply {i} newline-terminated");
        let line = line.trim_end();
        validate_json(line).unwrap_or_else(|e| panic!("reply {i} invalid JSON ({e}): {line}"));
        let want = if i % 2 == 0 {
            "\"op\":\"metrics\""
        } else {
            "\"op\":\"status\""
        };
        assert!(
            line.contains(want),
            "reply {i} out of order (want {want}): {line}"
        );
    }
    drop(reader);
    drop(writer);
    daemon.shutdown();
}

#[test]
fn a_deadline_expired_run_frees_its_worker_slot_promptly() {
    // One worker, zero queue headroom beyond it: if the 408 left its
    // slot occupied, the follow-up run could never start.
    let daemon = start(ServerConfig {
        jobs: Some(1),
        queue_depth: 1,
        ..test_config()
    });
    let mut conn = daemon.connect();

    // A run that would take minutes, strangled by a 1 ms deadline. The
    // cancel flag is polled at every step-chunk boundary, so the worker
    // must come back within one chunk of compute, not one run.
    let expired = conn
        .request(r#"{"op":"run","bench":"gobmk","budget":100000000,"scale":1.0,"deadline_ms":1}"#);
    assert!(expired.contains("\"code\":408"), "reply: {expired}");

    // The very next honest run on the same 1-worker pool completes —
    // the slot was released, not leaked.
    let started = Instant::now();
    let ok = conn.request(&run_line("hmmer"));
    assert!(ok.contains("\"ok\":true"), "reply: {ok}");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "the freed slot must serve the next run promptly"
    );

    // Inflight accounting agrees: nothing is stuck on the pool.
    let status = conn.request(r#"{"op":"status"}"#);
    assert!(status.contains("\"inflight\":0"), "reply: {status}");
    assert!(status.contains("\"queued\":0"), "reply: {status}");

    drop(conn);
    daemon.shutdown();
}
