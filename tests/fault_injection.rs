//! Fault-injection robustness tests (tier 1).
//!
//! The contracts under test, end to end:
//!
//! 1. **Determinism** — a fault schedule is a pure function of its seed,
//!    so two runs with the same seed produce bit-identical reports.
//! 2. **Survival** — no workload panics under pathological (storm) fault
//!    rates; injected faults surface as degradation activity, never as
//!    crashes or errors.
//! 3. **Bounded degradation** — at the default fault rates, a PowerChop
//!    run stays within 10 % of a clean full-power run of the same
//!    program, and every detected anomaly triggers a fail-safe
//!    transition.

use powerchop::{run_program, ManagerKind, RunConfig, RunReport};
use powerchop_faults::FaultConfig;
use powerchop_uarch::config::CoreKind;
use powerchop_workloads::Scale;

fn small_cfg(kind: CoreKind, faults: Option<FaultConfig>) -> RunConfig {
    let mut cfg = RunConfig::for_kind(kind);
    cfg.max_instructions = 200_000;
    cfg.faults = faults;
    cfg
}

fn assert_reports_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.bt, b.bt);
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.gated, b.gated);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.degrade, b.degrade);
    assert_eq!(a.energy.total_j.to_bits(), b.energy.total_j.to_bits());
    assert_eq!(a.energy.leakage_j.to_bits(), b.energy.leakage_j.to_bits());
}

#[test]
fn same_seed_produces_identical_reports() {
    for bench in ["hmmer", "namd", "streamcluster"] {
        let b = powerchop_workloads::by_name(bench).expect("known benchmark");
        let program = b.program(Scale(0.05));
        let cfg = small_cfg(b.core_kind(), Some(FaultConfig::storm(0xDEAD_BEEF)));
        let r1 = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run succeeds");
        let r2 = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run succeeds");
        assert_reports_identical(&r1, &r2);
        assert!(
            r1.faults.expect("fault stats").total() > 0,
            "{bench}: storm must fire"
        );
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let b = powerchop_workloads::by_name("hmmer").expect("known benchmark");
    let program = b.program(Scale(0.05));
    let r1 = run_program(
        &program,
        ManagerKind::PowerChop,
        &small_cfg(b.core_kind(), Some(FaultConfig::storm(1))),
    )
    .expect("run succeeds");
    let r2 = run_program(
        &program,
        ManagerKind::PowerChop,
        &small_cfg(b.core_kind(), Some(FaultConfig::storm(2))),
    )
    .expect("run succeeds");
    // Different seeds jitter every arrival, so the cycle counts diverge.
    assert_ne!(r1.cycles, r2.cycles, "seeds must matter");
}

#[test]
fn every_workload_survives_a_fault_storm() {
    // The whole point of the degradation layer: no guest program, on any
    // design point, panics or errors under 10x fault rates. A panic here
    // fails the test harness directly.
    for b in powerchop_workloads::all() {
        let program = b.program(Scale(0.05));
        let cfg = small_cfg(b.core_kind(), Some(FaultConfig::storm(0xFA11_5AFE)));
        for kind in [
            ManagerKind::PowerChop,
            ManagerKind::FullPower,
            ManagerKind::MinimalPower,
        ] {
            let report = run_program(&program, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} under {kind:?}: {e}", b.name()));
            assert!(report.instructions > 0, "{}: no forward progress", b.name());
        }
    }
}

#[test]
fn quiet_schedule_matches_a_clean_run() {
    // A schedule with every kind disabled must be observationally
    // identical to running with no schedule at all.
    let b = powerchop_workloads::by_name("hmmer").expect("known benchmark");
    let program = b.program(Scale(0.05));
    let clean = run_program(
        &program,
        ManagerKind::PowerChop,
        &small_cfg(b.core_kind(), None),
    )
    .expect("run succeeds");
    let quiet = run_program(
        &program,
        ManagerKind::PowerChop,
        &small_cfg(b.core_kind(), Some(FaultConfig::quiet(99))),
    )
    .expect("run succeeds");
    assert_eq!(clean.cycles, quiet.cycles);
    assert_eq!(clean.stats, quiet.stats);
    assert_eq!(quiet.faults.expect("stats present").total(), 0);
}

#[test]
fn default_fault_rates_keep_slowdown_bounded() {
    // Acceptance bound: at the default fault rates the faults themselves
    // cost < 10 % versus the same clean PowerChop run, on every tested
    // workload class (scalar SPEC-INT, vector SPEC-FP, PARSEC, mobile).
    // For scalar workloads — where clean PowerChop already tracks full
    // power closely at this budget — the end-to-end bound versus a clean
    // *full-power* run must also hold.
    for bench in ["hmmer", "gobmk", "namd", "blackscholes", "msn"] {
        let b = powerchop_workloads::by_name(bench).expect("known benchmark");
        let program = b.program(Scale(0.05));
        let mut cfg = small_cfg(b.core_kind(), None);
        cfg.max_instructions = 500_000;
        let clean_full = run_program(&program, ManagerKind::FullPower, &cfg).expect("run succeeds");
        let clean_chop = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run succeeds");
        cfg.faults = Some(FaultConfig::default_rates(0xBEEF));
        let faulted = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run succeeds");
        let fault_cost = faulted.slowdown_vs(&clean_chop);
        assert!(
            fault_cost < 0.10,
            "{bench}: fault-induced slowdown {fault_cost} over bound"
        );
        if matches!(bench, "hmmer" | "gobmk") {
            let end_to_end = faulted.slowdown_vs(&clean_full);
            assert!(
                end_to_end < 0.10,
                "{bench}: end-to-end slowdown {end_to_end} over bound"
            );
        }
    }
}

#[test]
fn anomalies_always_fail_safe() {
    // Hammer the PVT with corruption so the scrubbing cross-check fires,
    // then check the accounting invariant: anomalies are never absorbed
    // silently — each one forces at least one fail-safe window.
    let b = powerchop_workloads::by_name("hmmer").expect("known benchmark");
    let program = b.program(Scale(0.05));
    let mut fc = FaultConfig::storm(0x0DD5);
    fc.pvt_corrupt_every = 20_000;
    let mut cfg = small_cfg(b.core_kind(), Some(fc));
    cfg.max_instructions = 500_000;
    let report = run_program(&program, ManagerKind::PowerChop, &cfg).expect("run succeeds");
    let degrade = report.degrade.expect("powerchop reports degradation stats");
    let faults = report.faults.expect("fault stats present");
    assert!(
        faults.pvt_corruptions > 0,
        "corruption must be injected: {faults:?}"
    );
    assert_eq!(
        degrade.anomalies, degrade.failsafe_transitions,
        "every anomaly fails safe: {degrade:?}"
    );
}
