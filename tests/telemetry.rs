//! Tier-1 telemetry guarantees: tracing observes the simulation without
//! perturbing it.
//!
//! - A traced run's `RunReport` is bit-identical to an untraced run's,
//!   with and without fault storms, across benchmarks on both design
//!   points (the flight recorder must be a pure observer).
//! - The event ring wraps with flight-recorder semantics: newest events
//!   win and the dropped count is exact.
//! - Exporter output round-trips through a JSON parser (Chrome trace as
//!   one document, JSONL line by line) and the Prometheus dump is
//!   non-empty for a traced run.
//! - The metrics registry snapshot is deterministic: equal seeds give
//!   byte-identical Prometheus text, different seeds diverge.

use powerchop_suite::faults::FaultConfig;
use powerchop_suite::powerchop::{
    run_program, run_program_traced, ManagerKind, RunConfig, RunReport,
};
use powerchop_suite::telemetry::{export, validate_json, TelemetryConfig, Tracer};
use powerchop_suite::workloads::{self, Scale};

const SCALE: Scale = Scale(0.05);
const BUDGET: u64 = 400_000;

fn cfg_for(bench: &workloads::Benchmark, faults: Option<FaultConfig>) -> RunConfig {
    let mut cfg = RunConfig::for_kind(bench.core_kind());
    cfg.max_instructions = BUDGET;
    cfg.faults = faults;
    cfg
}

fn assert_reports_identical(tag: &str, a: &RunReport, b: &RunReport) {
    assert_eq!(a.instructions, b.instructions, "{tag}: instructions");
    assert_eq!(a.cycles, b.cycles, "{tag}: cycles");
    assert_eq!(a.stats, b.stats, "{tag}: core stats");
    assert_eq!(a.bt, b.bt, "{tag}: BT stats");
    assert_eq!(a.switches, b.switches, "{tag}: gating switches");
    assert_eq!(a.gated, b.gated, "{tag}: gated cycles");
    assert_eq!(a.pvt, b.pvt, "{tag}: PVT stats");
    assert_eq!(a.cde, b.cde, "{tag}: CDE stats");
    assert_eq!(a.nucleus, b.nucleus, "{tag}: nucleus stats");
    assert_eq!(a.faults, b.faults, "{tag}: fault stats");
    assert_eq!(a.degrade, b.degrade, "{tag}: degradation stats");
    assert_eq!(
        a.energy.total_j.to_bits(),
        b.energy.total_j.to_bits(),
        "{tag}: total energy bits"
    );
    assert_eq!(
        a.energy.leakage_j.to_bits(),
        b.energy.leakage_j.to_bits(),
        "{tag}: leakage energy bits"
    );
}

fn traced(bench: &workloads::Benchmark, faults: Option<FaultConfig>) -> (RunReport, Tracer) {
    let program = bench.program(SCALE);
    let cfg = cfg_for(bench, faults);
    run_program_traced(
        &program,
        ManagerKind::PowerChop,
        &cfg,
        Tracer::enabled(TelemetryConfig::default()),
    )
    .expect("traced run completes")
}

#[test]
fn traced_runs_are_bit_identical_to_untraced_runs() {
    // One benchmark per suite flavour: server vector-heavy, server
    // branchy, mobile — and each both clean and under a fault storm.
    for name in ["gems", "gobmk", "msn"] {
        let bench = workloads::by_name(name).expect("known benchmark");
        for faults in [None, Some(FaultConfig::storm(0xFEED))] {
            let tag = format!("{name}{}", if faults.is_some() { "+storm" } else { "" });
            let program = bench.program(SCALE);
            let untraced = run_program(&program, ManagerKind::PowerChop, &cfg_for(bench, faults))
                .expect("untraced run completes");
            let (report, tracer) = traced(bench, faults);
            assert_reports_identical(&tag, &untraced, &report);
            let rec = tracer.recorder().expect("tracer stays enabled");
            assert!(
                rec.ring().recorded() > 0,
                "{tag}: the traced run actually recorded events"
            );
        }
    }
}

#[test]
fn ring_wraps_with_exact_drop_counting() {
    let bench = workloads::by_name("gems").expect("known benchmark");
    let program = bench.program(SCALE);
    // A tiny ring forces wrap-around on any real run.
    let tracer = Tracer::enabled(TelemetryConfig {
        ring_capacity: 32,
        sample_every_cycles: 0,
    });
    let (_, tracer) = run_program_traced(
        &program,
        ManagerKind::PowerChop,
        &cfg_for(bench, None),
        tracer,
    )
    .expect("traced run completes");
    let rec = tracer.recorder().expect("tracer stays enabled");
    let ring = rec.ring();
    assert!(ring.dropped() > 0, "a 32-event ring must wrap");
    assert_eq!(ring.len(), 32, "the ring stays full once wrapped");
    assert_eq!(
        ring.recorded(),
        ring.len() as u64 + ring.dropped(),
        "every recorded event is either retained or counted as dropped"
    );
    let events = rec.events();
    assert!(
        events.windows(2).all(|w| w[0].cycle <= w[1].cycle),
        "retained events stay in cycle order across the wrap point"
    );
    let m = rec.metrics();
    assert_eq!(
        m.counter("telemetry_events_recorded_total"),
        ring.recorded()
    );
    assert_eq!(m.counter("telemetry_events_dropped_total"), ring.dropped());
}

#[test]
fn exporters_round_trip_through_a_json_parser() {
    let bench = workloads::by_name("gobmk").expect("known benchmark");
    let (report, tracer) = traced(bench, Some(FaultConfig::storm(7)));
    let rec = tracer.recorder().expect("tracer stays enabled");
    let events = rec.events();
    assert!(!events.is_empty());

    let chrome = export::chrome_trace_json(&events);
    validate_json(&chrome).expect("chrome trace is one well-formed JSON document");
    for cat in ["phase", "gating", "cde", "faults"] {
        assert!(
            chrome.contains(&format!("\"cat\":\"{cat}\"")),
            "chrome trace covers the {cat} category"
        );
    }

    let lines = export::jsonl(&events);
    assert_eq!(lines.lines().count(), events.len());
    for line in lines.lines() {
        validate_json(line).expect("every JSONL line is well-formed");
    }

    let prom = rec.metrics().to_prometheus_text();
    assert!(!prom.is_empty(), "traced runs produce a metrics dump");
    assert!(prom.contains("sim_instructions_total"));
    assert!(prom.contains(&format!("sim_instructions_total {}", report.instructions)));
}

#[test]
fn registry_snapshot_is_deterministic_per_seed() {
    let bench = workloads::by_name("hmmer").expect("known benchmark");
    let prom_for = |seed: u64| {
        let (_, tracer) = traced(bench, Some(FaultConfig::default_rates(seed)));
        let rec = tracer.recorder().expect("tracer stays enabled");
        rec.metrics().to_prometheus_text()
    };
    let a = prom_for(11);
    let b = prom_for(11);
    assert_eq!(a, b, "equal seeds give byte-identical metric dumps");
    let c = prom_for(12);
    assert_ne!(a, c, "a different fault seed must perturb the metrics");
}
