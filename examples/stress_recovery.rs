//! Stress & recovery: run one benchmark under an escalating fault
//! schedule and watch the degradation layer absorb it.
//!
//! Three runs of the same program: clean, default fault rates, and a 10x
//! storm. For each, the example prints the injected fault mix, what the
//! `DegradationGuard` did about it (fail-safe windows, re-profiles,
//! pinned phases), and the performance cost versus the clean run.
//!
//! ```sh
//! cargo run --release --example stress_recovery [benchmark-name] [seed]
//! ```

use powerchop_suite::faults::FaultConfig;
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig, RunReport};
use powerchop_suite::workloads::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hmmer".to_owned());
    let seed = match std::env::args().nth(2) {
        Some(s) => s.parse::<u64>()?,
        None => 0xCAFE_BABE,
    };
    let benchmark = workloads::by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;

    let mut cfg = RunConfig::for_kind(benchmark.core_kind());
    cfg.max_instructions = 2_000_000;
    let program = benchmark.program(Scale(0.25));

    println!(
        "stressing {name} on {:?} (seed {seed:#x})\n",
        benchmark.core_kind()
    );
    let clean = run_program(&program, ManagerKind::PowerChop, &cfg)?;
    report("clean", &clean, &clean);

    cfg.faults = Some(FaultConfig::default_rates(seed));
    let faulted = run_program(&program, ManagerKind::PowerChop, &cfg)?;
    report("default fault rates", &faulted, &clean);

    cfg.faults = Some(FaultConfig::storm(seed));
    let storm = run_program(&program, ManagerKind::PowerChop, &cfg)?;
    report("10x storm", &storm, &clean);

    // Determinism: the same seed replays the exact same history.
    let replay = run_program(&program, ManagerKind::PowerChop, &cfg)?;
    assert_eq!(storm.cycles, replay.cycles);
    assert_eq!(storm.faults, replay.faults);
    println!("replay with the same seed reproduced the storm run exactly.");
    Ok(())
}

fn report(label: &str, r: &RunReport, clean: &RunReport) {
    println!("== {label} ==");
    println!("   {} instructions in {} cycles", r.instructions, r.cycles);
    if let Some(f) = &r.faults {
        println!(
            "   faults injected: {} total ({} interrupts, {} ctx switches, \
             {} region invalidations, {} PVT corruptions, {} PVT evictions, \
             {} perturbations)",
            f.total(),
            f.interrupts,
            f.context_switches,
            f.region_invalidations,
            f.pvt_corruptions,
            f.pvt_evictions,
            f.perturbations
        );
    } else {
        println!("   faults injected: none");
    }
    if let Some(d) = &r.degrade {
        println!(
            "   degradation: {} anomalies, {} fail-safe windows, \
             {} re-profiles scheduled, {} phases pinned",
            d.anomalies, d.failsafe_transitions, d.reprofiles_scheduled, d.phases_pinned
        );
    }
    if !std::ptr::eq(r, clean) {
        println!(
            "   slowdown vs clean: {:.2} %",
            100.0 * r.slowdown_vs(clean)
        );
    }
    println!();
}
