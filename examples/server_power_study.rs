//! Server power study: PowerChop across the SPEC CPU2006 + PARSEC roster
//! on the Nehalem-like server core — the paper's Figures 12–14 in one
//! table.
//!
//! ```sh
//! cargo run --release --example server_power_study
//! ```

use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::uarch::config::CoreKind;
use powerchop_suite::workloads::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = RunConfig::for_kind(CoreKind::Server);
    cfg.max_instructions = 6_000_000;

    println!(
        "{:<14} {:>9} {:>10} {:>8} {:>8} {:>8}",
        "bench", "full-IPC", "slowdown%", "power-%", "leak-%", "energy-%"
    );
    let mut slowdowns = Vec::new();
    let mut powers = Vec::new();
    for b in workloads::all()
        .iter()
        .filter(|b| b.core_kind() == CoreKind::Server)
    {
        let program = b.program(Scale(0.6));
        let full = run_program(&program, ManagerKind::FullPower, &cfg)?;
        let chop = run_program(&program, ManagerKind::PowerChop, &cfg)?;
        let slow = 100.0 * chop.slowdown_vs(&full);
        let power = 100.0 * chop.power_reduction_vs(&full);
        println!(
            "{:<14} {:>9.3} {:>10.1} {:>8.1} {:>8.1} {:>8.1}",
            b.name(),
            full.ipc(),
            slow,
            power,
            100.0 * chop.leakage_reduction_vs(&full),
            100.0 * chop.energy_reduction_vs(&full),
        );
        slowdowns.push(slow);
        powers.push(power);
    }
    let n = slowdowns.len() as f64;
    println!(
        "\naverages: slowdown {:.1}%, total power reduction {:.1}%",
        slowdowns.iter().sum::<f64>() / n,
        powers.iter().sum::<f64>() / n,
    );
    Ok(())
}
