//! Bring your own workload: write a guest program with the assembler-style
//! builder, then let PowerChop manage it.
//!
//! The program below alternates between a SIMD-heavy phase and a
//! branch-heavy phase; PowerChop discovers both and gates the units each
//! phase does not need.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use powerchop_suite::gisa::{ProgramBuilder, Reg, VReg};
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::uarch::config::CoreKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = |i| Reg::new(i).expect("valid register");
    let v = |i| VReg::new(i).expect("valid register");

    let mut b = ProgramBuilder::new("custom");
    // Outer loop: repeat both phases several times.
    b.li(r(28), 0).li(r(29), 6);
    let outer = b.bind_label();

    // Phase 1: dense SIMD over a 64 KiB buffer.
    b.li(r(1), 0).li(r(2), 60_000);
    b.li(r(11), 0x100_0000).li(r(12), 0xFFFF).li(r(13), 64);
    let vec_top = b.bind_label();
    b.add(r(3), r(11), r(10));
    b.vload(v(0), r(3), 0);
    b.vmadd(v(1), v(0), v(0), v(1));
    b.vstore(v(1), r(3), 0);
    b.add(r(10), r(10), r(13));
    b.and(r(10), r(10), r(12));
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), vec_top);

    // Phase 2: data-dependent branches on LCG bits (unpredictable).
    b.li(r(1), 0).li(r(2), 80_000);
    b.li(r(14), 12345).li(r(15), 6_364_136_223_846_793_005);
    b.li(r(16), 1_442_695_040_888_963_407).li(r(17), 33);
    b.li(r(8), 1).li(r(9), 0);
    let br_top = b.bind_label();
    let other = b.label();
    let join = b.label();
    b.mul(r(14), r(14), r(15));
    b.add(r(14), r(14), r(16));
    b.shr(r(5), r(14), r(17));
    b.and(r(5), r(5), r(8));
    b.beq(r(5), r(9), other);
    b.addi(r(6), r(6), 1);
    b.jmp(join);
    b.bind(other)?;
    b.addi(r(7), r(7), 1);
    b.bind(join)?;
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), br_top);

    b.addi(r(28), r(28), 1);
    b.blt(r(28), r(29), outer);
    b.halt();
    let program = b.build()?;

    let cfg = RunConfig::for_kind(CoreKind::Server);
    let full = run_program(&program, ManagerKind::FullPower, &cfg)?;
    let chop = run_program(&program, ManagerKind::PowerChop, &cfg)?;

    println!("custom workload: {} instructions", chop.instructions);
    println!("  slowdown      {:>5.1} %", 100.0 * chop.slowdown_vs(&full));
    println!(
        "  power saved   {:>5.1} %",
        100.0 * chop.power_reduction_vs(&full)
    );
    println!(
        "  VPU gated     {:>5.1} % (branch phase)",
        100.0 * chop.gated.vpu_off_frac()
    );
    println!(
        "  BPU gated     {:>5.1} % (SIMD phase)",
        100.0 * chop.gated.bpu_off_frac()
    );
    println!(
        "  phases found  {:>5}",
        chop.cde.expect("powerchop run").decided
    );
    Ok(())
}
