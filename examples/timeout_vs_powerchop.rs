//! The paper's headline baseline comparison (§V-E, Figure 16): `namd`'s
//! vector operations are sparse but uniformly distributed, so the VPU
//! never idles long enough for a hardware timeout to gate it — yet it is
//! never performance-critical, so PowerChop keeps it off almost all the
//! time.
//!
//! ```sh
//! cargo run --release --example timeout_vs_powerchop
//! ```

use powerchop_suite::powerchop::managers::{ManagedSet, TimeoutVpuManager};
use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::uarch::config::CoreKind;
use powerchop_suite::workloads::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = RunConfig::for_kind(CoreKind::Server);
    cfg.max_instructions = 6_000_000;
    cfg.chop.managed = ManagedSet::VPU_ONLY;

    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "bench", "powerchop-off%", "timeout-off%", "slowdown%"
    );
    for name in ["namd", "perlbench", "h264ref", "soplex", "gobmk"] {
        let b = workloads::by_name(name).expect("known benchmark");
        let program = b.program(Scale(0.6));
        let full = run_program(&program, ManagerKind::FullPower, &cfg)?;
        let chop = run_program(&program, ManagerKind::PowerChop, &cfg)?;
        let timeout = run_program(
            &program,
            ManagerKind::TimeoutVpu {
                timeout_cycles: TimeoutVpuManager::PAPER_TIMEOUT_CYCLES,
            },
            &cfg,
        )?;
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>10.1}",
            name,
            100.0 * chop.gated.vpu_off_frac(),
            100.0 * timeout.gated.vpu_off_frac(),
            100.0 * chop.slowdown_vs(&full),
        );
    }
    println!("\nnamd: a few vector ops per thousand instructions, evenly spread —");
    println!("the timeout never fires, while PowerChop identifies the phase as");
    println!("non-critical and keeps the VPU gated (paper Figure 16).");
    Ok(())
}
