//! Phase timeline: watch PowerChop discover phases and enact policies —
//! the runtime view of the paper's Figure 4, rendered straight from the
//! flight-recorder event stream.
//!
//! ```sh
//! cargo run --release --example phase_timeline [benchmark-name]
//! ```

use powerchop_suite::powerchop::{run_program_traced, ManagerKind, RunConfig};
use powerchop_suite::telemetry::{timeline, TelemetryConfig, Tracer};
use powerchop_suite::workloads::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gems".to_owned());
    let benchmark = workloads::by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;

    let mut cfg = RunConfig::for_kind(benchmark.core_kind());
    cfg.max_instructions = 3_000_000;
    let program = benchmark.program(Scale(0.5));
    let tracer = Tracer::enabled(TelemetryConfig::default());
    let (report, tracer) = run_program_traced(&program, ManagerKind::PowerChop, &cfg, tracer)?;

    println!("phase timeline of {name}, from the flight-recorder event stream:\n");
    if let Some(rec) = tracer.recorder() {
        print!("{}", timeline::render(&rec.events(), report.cycles, 96));
    }
    println!(
        "\n{} instructions in {} cycles; policies changed {} times",
        report.instructions,
        report.cycles,
        report.switches.total()
    );
    Ok(())
}
