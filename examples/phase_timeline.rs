//! Phase timeline: watch PowerChop discover phases and enact policies,
//! window by window — the runtime view of the paper's Figure 4.
//!
//! ```sh
//! cargo run --release --example phase_timeline [benchmark-name]
//! ```

use std::collections::HashMap;

use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::workloads::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gems".to_owned());
    let benchmark = workloads::by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;

    let mut cfg = RunConfig::for_kind(benchmark.core_kind());
    cfg.max_instructions = 3_000_000;
    cfg.record_windows = true;
    let program = benchmark.program(Scale(0.5));
    let report = run_program(&program, ManagerKind::PowerChop, &cfg)?;

    // Assign each distinct signature a letter, in order of appearance.
    let mut names: HashMap<_, char> = HashMap::new();
    let mut next = b'A';
    println!("phase timeline of {name} (one character per 1000-translation window):\n");
    print!("phases:   ");
    for w in &report.windows {
        let c = *names.entry(w.signature).or_insert_with(|| {
            let c = next as char;
            next = (next + 1).min(b'z');
            c
        });
        print!("{c}");
    }
    println!();
    print!("VPU:      ");
    for w in &report.windows {
        print!("{}", if w.policy.vpu_on { '#' } else { '.' });
    }
    println!();
    print!("BPU:      ");
    for w in &report.windows {
        print!("{}", if w.policy.bpu_on { '#' } else { '.' });
    }
    println!();
    print!("MLC ways: ");
    for w in &report.windows {
        use powerchop_suite::uarch::cache::MlcWayState::*;
        print!(
            "{}",
            match w.policy.mlc {
                Full => '8',
                Half => '4',
                Quarter => '2',
                One => '1',
            }
        );
    }
    println!("\n\nlegend: '#' powered, '.' gated; MLC digit = active ways");
    println!(
        "{} distinct phases; {} windows; policies changed {} times",
        names.len(),
        report.windows.len(),
        report.switches.total()
    );
    Ok(())
}
