//! Quickstart: run one benchmark under PowerChop and compare it with a
//! fully-powered baseline.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark-name]
//! ```

use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::workloads::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "gobmk".to_owned());
    let benchmark = workloads::by_name(&name)
        .ok_or_else(|| format!("unknown benchmark {name}; see powerchop_workloads::all()"))?;

    let mut cfg = RunConfig::for_kind(benchmark.core_kind());
    cfg.max_instructions = 4_000_000;
    let program = benchmark.program(Scale(1.0));

    println!("running {name} on the {} core...", benchmark.core_kind());
    let full = run_program(&program, ManagerKind::FullPower, &cfg)?;
    let chop = run_program(&program, ManagerKind::PowerChop, &cfg)?;

    println!("\n              {:>12} {:>12}", "full-power", "powerchop");
    println!("IPC           {:>12.3} {:>12.3}", full.ipc(), chop.ipc());
    println!(
        "core power    {:>10.2} W {:>10.2} W",
        full.energy.avg_power_w, chop.energy.avg_power_w
    );
    println!(
        "leakage power {:>10.2} W {:>10.2} W",
        full.energy.leakage_power_w, chop.energy.leakage_power_w
    );
    println!("\nPowerChop results:");
    println!(
        "  slowdown            {:>6.1} %",
        100.0 * chop.slowdown_vs(&full)
    );
    println!(
        "  total power saved   {:>6.1} %",
        100.0 * chop.power_reduction_vs(&full)
    );
    println!(
        "  leakage saved       {:>6.1} %",
        100.0 * chop.leakage_reduction_vs(&full)
    );
    println!(
        "  VPU gated           {:>6.1} % of cycles",
        100.0 * chop.gated.vpu_off_frac()
    );
    println!(
        "  BPU gated           {:>6.1} % of cycles",
        100.0 * chop.gated.bpu_off_frac()
    );
    println!(
        "  MLC way-gated       {:>6.1} % of cycles",
        100.0 * chop.gated.mlc_gated_frac()
    );
    let pvt = chop.pvt.expect("powerchop runs track the PVT");
    println!(
        "  phases decided      {:>6}   (PVT: {} lookups, {} misses)",
        chop.cde.expect("powerchop runs track the CDE").decided,
        pvt.lookups,
        pvt.misses(),
    );
    Ok(())
}
