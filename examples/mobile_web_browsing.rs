//! Mobile web browsing: PowerChop on the Cortex-A9-like core across the
//! MobileBench R-GWB-like workloads, with the per-unit gating breakdown
//! of the paper's Figure 9.
//!
//! ```sh
//! cargo run --release --example mobile_web_browsing
//! ```

use powerchop_suite::powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_suite::uarch::config::CoreKind;
use powerchop_suite::workloads::{self, Scale, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = RunConfig::for_kind(CoreKind::Mobile);
    cfg.max_instructions = 6_000_000;

    println!("PowerChop on the mobile core (MobileBench R-GWB):\n");
    println!(
        "{:<8} {:>9} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "site", "slowdown%", "VPU-off%", "BPU-off%", "MLC-gate%", "power-%", "leak-%"
    );
    for b in workloads::suite(Suite::MobileBench) {
        let program = b.program(Scale(0.6));
        let full = run_program(&program, ManagerKind::FullPower, &cfg)?;
        let chop = run_program(&program, ManagerKind::PowerChop, &cfg)?;
        println!(
            "{:<8} {:>9.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>8.1}",
            b.name(),
            100.0 * chop.slowdown_vs(&full),
            100.0 * chop.gated.vpu_off_frac(),
            100.0 * chop.gated.bpu_off_frac(),
            100.0 * chop.gated.mlc_gated_frac(),
            100.0 * chop.power_reduction_vs(&full),
            100.0 * chop.leakage_reduction_vs(&full),
        );
    }
    println!("\nthe browser's script phases gate the BPU; streaming resource loads");
    println!("way-gate the MLC; the VPU is almost never needed on mobile pages.");
    Ok(())
}
